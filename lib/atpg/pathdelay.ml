open Olfu_logic
open Olfu_netlist

type path = {
  launch : int;
  hops : (int * int) list;
}

let capture p =
  match List.rev p.hops with
  | (sink, _) :: _ -> sink
  | [] -> p.launch

let is_endpoint nl sink =
  Cell.equal_kind (Netlist.kind nl sink) Cell.Output
  || Cell.is_seq (Netlist.kind nl sink)

let enumerate ?(max_paths = 10_000) ?(max_len = 256) nl =
  let paths = ref [] in
  let count = ref 0 in
  let exception Launch_done in
  let launch_points =
    Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl)
  in
  (* stratified: cap each launch point's share so the sample is not just
     the DFS prefix of the first few ports *)
  let per_launch =
    max 1 (max_paths / max 1 (Array.length launch_points))
  in
  let launch_count = ref 0 in
  let emit launch rev_hops =
    incr count;
    incr launch_count;
    paths := { launch; hops = List.rev rev_hops } :: !paths;
    if !launch_count >= per_launch || !count >= max_paths then
      raise Launch_done
  in
  let rec extend launch node rev_hops len =
    if len < max_len then
      Array.iter
        (fun (sink, pin) ->
          let hops = (sink, pin) :: rev_hops in
          if is_endpoint nl sink then emit launch hops
          else extend launch sink hops (len + 1))
        (Netlist.fanout nl node)
  in
  Array.iter
    (fun l ->
      launch_count := 0;
      if !count < max_paths then
        try extend l l [] 0 with Launch_done -> ())
    launch_points;
  List.rev !paths

(* transitive fanout of the launch node: side inputs inside it are
   transition-correlated, so their constants must not block the path *)
let launch_cone nl launch =
  let cone = Array.make (Netlist.length nl) false in
  let rec visit i =
    if not cone.(i) then begin
      cone.(i) <- true;
      Array.iter
        (fun (sink, _) ->
          if not (is_endpoint nl sink) then visit sink
          else cone.(sink) <- true)
        (Netlist.fanout nl i)
    end
  in
  visit launch;
  cone

let untestable_with_cone t cone p =
  let nl = t.Untestable.netlist in
  let consts = t.Untestable.consts.Ternary.values in
  let exempt i = cone.(i) in
  (* constant launch point: no transition can start *)
  Logic4.is_binary consts.(p.launch)
  || List.exists
       (fun (sink, pin) ->
         (* side inputs tied controlling, or the stage output constant *)
         (not (Observe.pin_allowed_exempt ~exempt nl consts sink pin))
         ||
         (not (is_endpoint nl sink))
         && Logic4.is_binary consts.(sink))
       p.hops

let untestable t p =
  untestable_with_cone t (launch_cone t.Untestable.netlist p.launch) p

type census = {
  enumerated : int;
  untestable_paths : int;
  truncated : bool;
}

let classify ?(max_paths = 10_000) ?max_len t nl =
  let paths = enumerate ~max_paths ?max_len nl in
  (* cache the launch cones: paths are grouped by launch point *)
  let cones = Hashtbl.create 97 in
  let cone_of launch =
    match Hashtbl.find_opt cones launch with
    | Some c -> c
    | None ->
      let c = launch_cone nl launch in
      Hashtbl.replace cones launch c;
      c
  in
  let u =
    List.length
      (List.filter (fun p -> untestable_with_cone t (cone_of p.launch) p) paths)
  in
  {
    enumerated = List.length paths;
    untestable_paths = u;
    truncated = List.length paths >= max_paths;
  }

let pp_census ppf c =
  Format.fprintf ppf "paths: %d%s, untestable: %d (%.1f%%)" c.enumerated
    (if c.truncated then " (capped)" else "")
    c.untestable_paths
    (100. *. float_of_int c.untestable_paths
    /. float_of_int (max 1 c.enumerated))

let pp_path nl ppf p =
  let name i =
    match Netlist.name nl i with Some s -> s | None -> Printf.sprintf "n%d" i
  in
  Format.fprintf ppf "%s" (name p.launch);
  List.iter (fun (sink, pin) -> Format.fprintf ppf " ->%d %s" pin (name sink)) p.hops
