open Olfu_logic
open Olfu_netlist

type t = {
  nl : Netlist.t;
  net_obs : bool array;
  branch_obs : bool array array;  (* per node, per input pin *)
}

let is0 v = Logic4.equal v Logic4.L0
let is1 v = Logic4.equal v Logic4.L1
let same_binary a b = Logic4.is_binary a && Logic4.equal a b

let pin_allowed_gen ~exempt ~value nl node pin =
  let nd = Netlist.node nl node in
  (* a fault-correlated side net cannot be relied on as a constant *)
  let c i =
    let d = nd.Netlist.fanin.(i) in
    if exempt d then Logic4.X else value d
  in
  let others_not v =
    let ok = ref true in
    Array.iteri (fun i _ -> if i <> pin && Logic4.equal (c i) v then ok := false)
      nd.Netlist.fanin;
    !ok
  in
  match nd.Netlist.kind with
  | Cell.Buf | Cell.Not | Cell.Output | Cell.Dff -> true
  | Cell.And | Cell.Nand -> others_not Logic4.L0
  | Cell.Or | Cell.Nor -> others_not Logic4.L1
  | Cell.Xor | Cell.Xnor -> true
  | Cell.Mux2 -> (
    match pin with
    | 0 -> not (same_binary (c 1) (c 2))
    | 1 -> not (is1 (c 0))
    | _ -> not (is0 (c 0)))
  | Cell.Dffr -> (
    match pin with
    | 0 -> not (is0 (c 1))  (* reset permanently asserted swallows D *)
    | _ ->
      (* Asserting reset is visible only if the register could hold 1. *)
      not (is0 (c 0) && is0 (if exempt node then Logic4.X else value node)))
  | Cell.Sdff -> (
    match pin with
    | 0 -> not (is1 (c 2))  (* D dead when scan-enable stuck in shift *)
    | 1 -> not (is0 (c 2))  (* SI dead in mission mode: the scan rule *)
    | _ -> not (same_binary (c 0) (c 1)))
  | Cell.Sdffr -> (
    match pin with
    | 0 -> not (is1 (c 2)) && not (is0 (c 3))
    | 1 -> not (is0 (c 2)) && not (is0 (c 3))
    | 2 -> not (same_binary (c 0) (c 1)) && not (is0 (c 3))
    | _ ->
      (* reset visible only if the register could hold 1 *)
      not
        (is0 (Logic4.mux ~sel:(c 2) ~a:(c 0) ~b:(c 1))
        && is0 (if exempt node then Logic4.X else value node)))
  | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex ->
    invalid_arg "Observe.pin_allowed: cell has no input pins"

let pin_allowed_exempt ~exempt nl consts node pin =
  pin_allowed_gen ~exempt ~value:(fun i -> consts.(i)) nl node pin

let pin_allowed nl consts node pin =
  pin_allowed_exempt ~exempt:(fun _ -> false) nl consts node pin

let run ?(observable_output = fun _ -> true) nl ~consts =
  let n = Netlist.length nl in
  let net_obs = Array.make n false in
  let branch_obs =
    Array.init n (fun i -> Array.make (Array.length (Netlist.fanin nl i)) false)
  in
  let queue = Queue.create () in
  let mark_net d =
    if not net_obs.(d) then begin
      net_obs.(d) <- true;
      Queue.add d queue
    end
  in
  (* Seed: branches into counted output markers. *)
  Array.iter
    (fun o ->
      if observable_output o then begin
        branch_obs.(o).(0) <- true;
        mark_net (Netlist.fanin nl o).(0)
      end)
    (Netlist.outputs nl);
  (* Backward closure: an observable net makes its driver's input pins
     observable wherever the side constants allow propagation. *)
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let fanin = Netlist.fanin nl node in
    Array.iteri
      (fun pin drv ->
        if (not branch_obs.(node).(pin)) && pin_allowed nl consts node pin
        then begin
          branch_obs.(node).(pin) <- true;
          mark_net drv
        end)
      fanin
  done;
  { nl; net_obs; branch_obs }

let net t i = t.net_obs.(i)
let branch t node pin = t.branch_obs.(node).(pin)

let num_unobservable t =
  Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 t.net_obs
