open Olfu_netlist

(** SCOAP testability measures (Goldstein).

    Controllabilities [cc0]/[cc1] count the effort to set a net to 0/1;
    observability [co] the effort to propagate it to an output.
    Sequential cells add one unit of (time-frame) depth.  [infinity] marks
    values unreachable structurally (e.g. [cc1] of a tied-0 net). *)

type t

val infinity : int

val run : Netlist.t -> t
(** Iterates to a fixed point (sequential loops make the measures
    recursive). *)

val cc0 : t -> int -> int
val cc1 : t -> int -> int

val co : t -> int -> int
(** Stem observability of the net driven by the node. *)

val co_branch : t -> int -> int -> int
(** [co_branch t node pin]: observability of that fanout branch. *)

val hardest : t -> n:int -> (int * int) list
(** The [n] nets with the highest finite [cc0+cc1+co] score, descending —
    a quick profile of where test generation will struggle. *)
