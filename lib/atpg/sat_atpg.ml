open Olfu_netlist
open Olfu_fault
module S = Olfu_sat.Solver

type result = Test of Podem.assignment | Untestable | Unknown

open Cnf

let is_assignable nl i =
  match Netlist.kind nl i with
  | Cell.Input -> true
  | k -> Cell.is_seq k

let run ?(observable_output = fun _ -> true) ?(observe_captures = true)
    ?(conflict_limit = 200_000) nl fault =
  (match fault.Fault.site.Fault.pin with
  | Cell.Pin.Clk -> invalid_arg "Sat_atpg.run: clock-pin fault"
  | _ -> ());
  let s = S.create () in
  let fresh () = S.new_var s in
  let n = Netlist.length nl in
  (* good-circuit variables for every non-marker node *)
  let good = Array.make n 0 in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Output -> ()
      | _ -> good.(i) <- fresh ())
    nl;
  let good_lit i =
    match Netlist.kind nl i with
    | Cell.Output -> good.((Netlist.fanin nl i).(0))
    | _ -> good.(i)
  in
  (* constants and sources *)
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Tie0 -> S.add_clause s [ -good.(i) ]
      | Cell.Tie1 -> S.add_clause s [ good.(i) ]
      | _ -> ignore nd)
    nl;
  (* good-circuit gate clauses *)
  Array.iter
    (fun i ->
      match Netlist.kind nl i with
      | Cell.Output -> ()
      | k ->
        let ins =
          Array.to_list (Array.map (fun d -> good_lit d) (Netlist.fanin nl i))
        in
        encode_cell s fresh k good.(i) ins)
    (Netlist.topo nl);
  (* fault cone (combinational nodes whose value can differ) *)
  let { Fault.node = fnode; pin = fpin } = fault.Fault.site in
  let stuck_lit v = if fault.Fault.stuck then v else -v in
  let vconst = fresh () in
  (* vconst is the faulty value at the fault site *)
  S.add_clause s [ stuck_lit vconst ];
  let in_cone = Array.make n false in
  let faulty = Array.make n 0 in
  let rec spread i =
    (* mark comb nodes downstream of a difference *)
    Array.iter
      (fun (sink, _) ->
        match Netlist.kind nl sink with
        | Cell.Output -> ()
        | k when Cell.is_seq k -> ()
        | _ ->
          if not in_cone.(sink) then begin
            in_cone.(sink) <- true;
            spread sink
          end)
      (Netlist.fanout nl i)
  in
  let branch_sink =
    match fpin with
    | Cell.Pin.Out ->
      in_cone.(fnode) <- true;
      faulty.(fnode) <- vconst;
      spread fnode;
      None
    | Cell.Pin.In _ -> (
      match Netlist.kind nl fnode with
      | Cell.Output | Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr ->
        Some fnode
      | _ ->
        in_cone.(fnode) <- true;
        spread fnode;
        Some fnode)
    | Cell.Pin.Clk -> assert false
  in
  (* faulty copies of cone nodes *)
  Netlist.iter_nodes
    (fun i _ -> if in_cone.(i) && faulty.(i) = 0 then faulty.(i) <- fresh ())
    nl;
  let faulty_operand sink p drv =
    if
      Some sink = branch_sink
      && Cell.Pin.equal fault.Fault.site.Fault.pin (Cell.Pin.In p)
    then vconst
    else if in_cone.(drv) then faulty.(drv)
    else good_lit drv
  in
  Array.iter
    (fun i ->
      if in_cone.(i) && not (i = fnode && fpin = Cell.Pin.Out) then begin
        (* note: for a stem fault the site's faulty var is the constant and
           gets no gate clauses; for a branch fault the sink is encoded
           with the forced operand *)
        match Netlist.kind nl i with
        | Cell.Output -> ()
        | k ->
          let ins =
            Array.to_list
              (Array.mapi (fun p d -> faulty_operand i p d) (Netlist.fanin nl i))
          in
          encode_cell s fresh k faulty.(i) ins
      end)
    (Netlist.topo nl);
  (* observation differences *)
  let diffs = ref [] in
  Array.iter
    (fun o ->
      if observable_output o then begin
        let d = (Netlist.fanin nl o).(0) in
        if Some o = branch_sink then begin
          (* fault forces the port to the stuck value: a difference needs
             the good value opposite *)
          let x = fresh () in
          equal_gate s x (if fault.Fault.stuck then -good_lit d else good_lit d);
          diffs := x :: !diffs
        end
        else if in_cone.(d) then begin
          let x = fresh () in
          xor2_gate s x (good_lit d) faulty.(d);
          diffs := x :: !diffs
        end
      end)
    (Netlist.outputs nl);
  if observe_captures then
    Array.iter
      (fun i ->
        let fanin = Netlist.fanin nl i in
        let touched =
          Some i = branch_sink || Array.exists (fun d -> in_cone.(d)) fanin
        in
        if touched then begin
          let k = Netlist.kind nl i in
          let good_ins = Array.to_list (Array.map good_lit fanin) in
          let faulty_ins =
            Array.to_list (Array.mapi (fun p d -> faulty_operand i p d) fanin)
          in
          let cg = encode_capture s fresh k good_ins in
          let cf = encode_capture s fresh k faulty_ins in
          let x = fresh () in
          xor2_gate s x cg cf;
          diffs := x :: !diffs
        end)
      (Netlist.seq_nodes nl);
  match !diffs with
  | [] -> Untestable
  | ds -> (
    S.add_clause s ds;
    match S.solve ~conflict_limit s with
    | S.Unsat -> Untestable
    | S.Unknown -> Unknown
    | S.Sat model ->
      let asg = ref [] in
      Netlist.iter_nodes
        (fun i _ ->
          if is_assignable nl i && good.(i) > 0 then
            asg := (i, model good.(i)) :: !asg)
        nl;
      Test (List.rev !asg))
