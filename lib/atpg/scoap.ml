open Olfu_netlist

type t = {
  nl : Netlist.t;
  cc0 : int array;
  cc1 : int array;
  co : int array;
  co_branch : int array array;
}

let infinity = max_int / 4

let sat_add a b = if a >= infinity || b >= infinity then infinity else a + b

let sum = List.fold_left sat_add 0
let min_list = List.fold_left min infinity

(* XOR of a list of (cc0, cc1) pairs: cost of parity 0 / parity 1. *)
let xor_cc =
  List.fold_left
    (fun (e, o) (c0, c1) ->
      (min (sat_add e c0) (sat_add o c1), min (sat_add e c1) (sat_add o c0)))
    (0, infinity)

let controllability nl =
  let n = Netlist.length nl in
  let cc0 = Array.make n infinity and cc1 = Array.make n infinity in
  let pair i = (cc0.(i), cc1.(i)) in
  let eval i =
    let nd = Netlist.node nl i in
    let ins = Array.to_list (Array.map pair nd.Netlist.fanin) in
    let c0 l = List.map fst l and c1 l = List.map snd l in
    match nd.Netlist.kind with
    | Cell.Input -> (1, 1)
    | Cell.Tie0 -> (0, infinity)
    | Cell.Tie1 -> (infinity, 0)
    | Cell.Tiex -> (infinity, infinity)
    | Cell.Output | Cell.Buf ->
      let a0, a1 = List.hd ins in
      (sat_add a0 1, sat_add a1 1)
    | Cell.Not ->
      let a0, a1 = List.hd ins in
      (sat_add a1 1, sat_add a0 1)
    | Cell.And -> (sat_add (min_list (c0 ins)) 1, sat_add (sum (c1 ins)) 1)
    | Cell.Nand -> (sat_add (sum (c1 ins)) 1, sat_add (min_list (c0 ins)) 1)
    | Cell.Or -> (sat_add (sum (c0 ins)) 1, sat_add (min_list (c1 ins)) 1)
    | Cell.Nor -> (sat_add (min_list (c1 ins)) 1, sat_add (sum (c0 ins)) 1)
    | Cell.Xor ->
      let e, o = xor_cc ins in
      (sat_add e 1, sat_add o 1)
    | Cell.Xnor ->
      let e, o = xor_cc ins in
      (sat_add o 1, sat_add e 1)
    | Cell.Mux2 -> (
      match ins with
      | [ (s0, s1); (a0, a1); (b0, b1) ] ->
        ( sat_add (min (sat_add s0 a0) (sat_add s1 b0)) 1,
          sat_add (min (sat_add s0 a1) (sat_add s1 b1)) 1 )
      | _ -> assert false)
    | Cell.Dff ->
      let d0, d1 = List.hd ins in
      (sat_add d0 1, sat_add d1 1)
    | Cell.Dffr -> (
      match ins with
      | [ (d0, d1); (r0, _r1) ] ->
        (sat_add (min d0 r0) 1, sat_add d1 1)
      | _ -> assert false)
    | Cell.Sdff -> (
      (* Mission mode: the D path; the scan path is costed like a mux. *)
      match ins with
      | [ (d0, d1); (s0, s1); (e0, e1) ] ->
        ( sat_add (min (sat_add e0 d0) (sat_add e1 s0)) 1,
          sat_add (min (sat_add e0 d1) (sat_add e1 s1)) 1 )
      | _ -> assert false)
    | Cell.Sdffr -> (
      match ins with
      | [ (d0, d1); (s0, s1); (e0, e1); (r0, _r1) ] ->
        ( sat_add (min r0 (min (sat_add e0 d0) (sat_add e1 s0))) 1,
          sat_add (min (sat_add e0 d1) (sat_add e1 s1)) 1 )
      | _ -> assert false)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 256 do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      let v0, v1 = eval i in
      if v0 < cc0.(i) then begin cc0.(i) <- v0; changed := true end;
      if v1 < cc1.(i) then begin cc1.(i) <- v1; changed := true end
    done
  done;
  (cc0, cc1)

let observability nl (cc0, cc1) =
  let n = Netlist.length nl in
  let co = Array.make n infinity in
  let co_branch =
    Array.init n (fun i -> Array.make (Array.length (Netlist.fanin nl i)) infinity)
  in
  let side_cost i pin noncontrolling_cc =
    let nd = Netlist.node nl i in
    let total = ref 0 in
    Array.iteri
      (fun p drv -> if p <> pin then total := sat_add !total (noncontrolling_cc drv))
      nd.Netlist.fanin;
    !total
  in
  let branch_cost i pin =
    let nd = Netlist.node nl i in
    let out = co.(i) in
    match nd.Netlist.kind with
    | Cell.Output -> 0
    | Cell.Buf | Cell.Not -> sat_add out 1
    | Cell.And | Cell.Nand ->
      sat_add out (sat_add (side_cost i pin (fun d -> cc1.(d))) 1)
    | Cell.Or | Cell.Nor ->
      sat_add out (sat_add (side_cost i pin (fun d -> cc0.(d))) 1)
    | Cell.Xor | Cell.Xnor ->
      sat_add out (sat_add (side_cost i pin (fun d -> min cc0.(d) cc1.(d))) 1)
    | Cell.Mux2 ->
      let f = Netlist.fanin nl i in
      let sel = f.(0) and a = f.(1) and b = f.(2) in
      let c =
        match pin with
        | 0 ->
          (* Observing the select needs the data inputs to differ. *)
          min (sat_add cc0.(a) cc1.(b)) (sat_add cc1.(a) cc0.(b))
        | 1 -> cc0.(sel)
        | _ -> cc1.(sel)
      in
      sat_add out (sat_add c 1)
    | Cell.Dff -> sat_add out 1
    | Cell.Dffr -> (
      let f = Netlist.fanin nl i in
      match pin with
      | 0 -> sat_add out (sat_add cc1.(f.(1)) 1)
      | _ -> sat_add out (sat_add cc1.(f.(0)) 1))
    | Cell.Sdff | Cell.Sdffr -> (
      let f = Netlist.fanin nl i in
      match pin with
      | 0 -> sat_add out (sat_add cc0.(f.(2)) 1)
      | 1 -> sat_add out (sat_add cc1.(f.(2)) 1)
      | 2 ->
        sat_add out
          (sat_add
             (min (sat_add cc0.(f.(0)) cc1.(f.(1)))
                (sat_add cc1.(f.(0)) cc0.(f.(1))))
             1)
      | _ -> sat_add out (sat_add cc1.(f.(0)) 1))
    | Cell.Input | Cell.Tie0 | Cell.Tie1 | Cell.Tiex -> assert false
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 256 do
    changed := false;
    incr rounds;
    Array.iter (fun o -> if co.(o) > 0 then begin
          (* Output markers are the observation roots. *)
          co.(o) <- 0;
          changed := true
        end)
      (Netlist.outputs nl);
    for i = 0 to n - 1 do
      Array.iteri
        (fun pin drv ->
          let c = branch_cost i pin in
          if c < co_branch.(i).(pin) then begin
            co_branch.(i).(pin) <- c;
            changed := true
          end;
          if c < co.(drv) then begin
            co.(drv) <- c;
            changed := true
          end)
        (Netlist.fanin nl i)
    done
  done;
  (co, co_branch)

let run nl =
  let cc0, cc1 = controllability nl in
  let co, co_branch = observability nl (cc0, cc1) in
  { nl; cc0; cc1; co; co_branch }

let cc0 t i = t.cc0.(i)
let cc1 t i = t.cc1.(i)
let co t i = t.co.(i)
let co_branch t node pin = t.co_branch.(node).(pin)

let hardest t ~n =
  let scored = ref [] in
  for i = 0 to Netlist.length t.nl - 1 do
    let s = sat_add (sat_add t.cc0.(i) t.cc1.(i)) t.co.(i) in
    if s < infinity then scored := (i, s) :: !scored
  done;
  List.sort (fun (_, a) (_, b) -> Int.compare b a) !scored
  |> List.filteri (fun k _ -> k < n)
