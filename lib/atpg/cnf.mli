open Olfu_netlist

(** Tseitin encoding of netlist cells into SAT clauses (shared by the
    {!Sat_atpg} miter and the {!Equiv} checker).  Operands and outputs are
    signed DIMACS-style literals. *)

val and_gate : Olfu_sat.Solver.t -> int -> int list -> unit
val or_gate : Olfu_sat.Solver.t -> int -> int list -> unit
val xor2_gate : Olfu_sat.Solver.t -> int -> int -> int -> unit
val equal_gate : Olfu_sat.Solver.t -> int -> int -> unit
val mux_gate : Olfu_sat.Solver.t -> int -> int -> int -> int -> unit

val encode_cell :
  Olfu_sat.Solver.t -> (unit -> int) -> Cell.kind -> int -> int list -> unit
(** [encode_cell s fresh kind y ins]: clauses forcing [y] to equal the
    cell function of [ins]; [fresh] allocates helper variables.  Raises
    [Invalid_argument] on non-combinational kinds. *)

val encode_capture :
  Olfu_sat.Solver.t -> (unit -> int) -> Cell.kind -> int list -> int
(** Literal holding a flip-flop's captured next-state value. *)

(** Folding, hash-consing circuit construction over solver literals:
    structurally identical subterms share one variable and constants fold
    through — the workhorse of {!Equiv} and {!Bmc}. *)
module Builder : sig
  type t

  val create : Olfu_sat.Solver.t -> t
  (** Allocates the constant-true variable. *)

  val fresh : t -> int
  val vtrue : t -> int
  val is_true : t -> int -> bool
  val is_false : t -> int -> bool
  val of_bool : t -> bool -> int
  val mk_and : t -> int list -> int
  val mk_or : t -> int list -> int
  val mk_xor2 : t -> int -> int -> int
  val mk_xor : t -> int list -> int
  val mk_mux : t -> int -> int -> int -> int
  (** [mk_mux b sel a b']: [a] when [sel] false. *)

  val cell : t -> Cell.kind -> int list -> int
  val capture : t -> Cell.kind -> int list -> int
end
