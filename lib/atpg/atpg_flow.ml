open Olfu_logic
open Olfu_netlist
open Olfu_fault
module Trace = Olfu_obs.Trace

type config = {
  seed : int;
  random_batch : int;
  max_random_batches : int;
  backtrack_limit : int;
  use_sat : bool;
  sat_conflict_limit : int;
  observable_output : int -> bool;
  observe_captures : bool;
  trace : Trace.sink;
}

let default =
  {
    seed = 1;
    random_batch = 64;
    max_random_batches = 32;
    backtrack_limit = 2_000;
    use_sat = true;
    sat_conflict_limit = 50_000;
    observable_output = (fun _ -> true);
    observe_captures = true;
    trace = Trace.null;
  }

type result = {
  patterns : Olfu_fsim.Comb_fsim.pattern list;
  detected : int;
  static_pruned : int;
  proved_untestable : int;
  aborted : int;
  random_patterns : int;
  sat_settled : int;
  seconds : float;
}

let active st =
  match (st : Status.t) with
  | Status.Not_analyzed | Status.Not_detected -> true
  | _ -> false

let run cfg nl fl =
  let {
    seed;
    random_batch;
    max_random_batches;
    backtrack_limit;
    use_sat;
    sat_conflict_limit;
    observable_output;
    observe_captures;
    trace;
  } =
    cfg
  in
  let t0 = Unix.gettimeofday () in
  let guide = Trace.span trace ~cat:"engine" "scoap" (fun () -> Scoap.run nl) in
  let rng = Random.State.make [| seed |] in
  let srcs = Array.append (Netlist.inputs nl) (Netlist.seq_nodes nl) in
  let patterns = ref [] in
  let random_patterns = ref 0 in
  (* phase 0: static untestability proofs (ternary + implication engine)
     so the search phases never target a provably dead fault.  [Cut]
     ff_mode matches the per-frame combinational model the pattern
     engines use; captures must be observed for the walker's through-FF
     credit to be sound, so the prune is skipped otherwise *)
  let static_pruned = ref 0 in
  if observe_captures then
    Trace.span trace ~cat:"step" "static prune" (fun () ->
        let t =
          Untestable.analyze ~ff_mode:Ternary.Cut ~observable_output ~trace nl
        in
        Trace.span trace ~cat:"engine" "classify" @@ fun () ->
        Flist.iteri
          (fun i f st ->
            if active st then
              match Untestable.fault_verdict t f with
              | Some v ->
                incr static_pruned;
                Flist.set_status fl i v
              | None -> ())
          fl);
  (* phase 1: random patterns with fault dropping *)
  Trace.span trace ~cat:"step" "random patterns" (fun () ->
      let exhausted = ref false in
      let batches = ref 0 in
      while (not !exhausted) && !batches < max_random_batches do
        incr batches;
        let batch =
          Array.init random_batch (fun _ ->
              Array.map
                (fun _ -> Logic4.of_bool (Random.State.bool rng))
                srcs)
        in
        let r =
          Olfu_fsim.Comb_fsim.run ~observe_captures ~observable_output ~trace
            nl fl batch
        in
        if r.Olfu_fsim.Comb_fsim.detected = 0 then exhausted := true
        else begin
          (* keep the batch: simple (non-minimal) pattern retention *)
          Array.iter (fun p -> patterns := p :: !patterns) batch;
          random_patterns := !random_patterns + random_batch
        end
      done);
  (* phase 2: PODEM for the survivors.  Per-target search times are
     accumulated and recorded as one "podem" engine span so the manifest
     attribution stays flat (fsim replays keep their own spans). *)
  let proved = ref 0 and aborted = ref 0 in
  let podem_s = ref 0. and podem_runs = ref 0 in
  Trace.span trace ~cat:"step" "podem" (fun () ->
      Flist.iteri
        (fun i f st ->
          if active st && f.Fault.site.Fault.pin <> Cell.Pin.Clk then begin
            let ts = Trace.now trace in
            let outcome =
              Podem.run ~backtrack_limit ~observable_output ~observe_captures
                ~guide nl f
            in
            podem_s := !podem_s +. (Trace.now trace -. ts);
            incr podem_runs;
            match outcome with
            | Podem.Test assignment ->
              let p =
                Array.map
                  (fun s ->
                    match List.assoc_opt s assignment with
                    | Some b -> Logic4.of_bool b
                    | None -> Logic4.of_bool (Random.State.bool rng))
                  srcs
              in
              (* fault-simulate the new pattern: it may catch several *)
              let sub = Flist.create nl [| f |] in
              ignore
                (Olfu_fsim.Comb_fsim.run ~observe_captures ~observable_output
                   ~trace nl sub [| p |]
                  : Olfu_fsim.Comb_fsim.report);
              if Status.equal (Flist.status sub 0) Status.Detected then begin
                patterns := p :: !patterns;
                ignore
                  (Olfu_fsim.Comb_fsim.run ~observe_captures
                     ~observable_output ~trace nl fl [| p |]
                    : Olfu_fsim.Comb_fsim.report);
                (* ensure the target itself is marked even if PT-shadowed *)
                Flist.set_status fl i Status.Detected
              end
              else begin
                (* X-masking kept the oracle from confirming; count as
                   abort *)
                incr aborted;
                Flist.set_status fl i Status.Atpg_untestable
              end
            | Podem.Proved_untestable ->
              incr proved;
              Flist.set_status fl i (Status.Undetectable Status.Redundant)
            | Podem.Aborted ->
              incr aborted;
              Flist.set_status fl i Status.Atpg_untestable
          end)
        fl);
  if Trace.enabled trace && !podem_runs > 0 then begin
    Trace.record trace ~cat:"engine" ~dur:!podem_s "podem";
    Trace.add trace "podem.targets" !podem_runs
  end;
  (* phase 3: complete SAT prover for the aborts *)
  let sat_settled = ref 0 in
  let sat_s = ref 0. and sat_runs = ref 0 in
  if use_sat then
    Trace.span trace ~cat:"step" "sat" (fun () ->
        Flist.iteri
          (fun i f st ->
            if Status.equal st Status.Atpg_untestable then begin
              let ts = Trace.now trace in
              let outcome =
                Sat_atpg.run ~conflict_limit:sat_conflict_limit
                  ~observable_output ~observe_captures nl f
              in
              sat_s := !sat_s +. (Trace.now trace -. ts);
              incr sat_runs;
              match outcome with
              | Sat_atpg.Test assignment ->
                incr sat_settled;
                decr aborted;
                let p =
                  Array.map
                    (fun s ->
                      match List.assoc_opt s assignment with
                      | Some b -> Logic4.of_bool b
                      | None -> Logic4.of_bool (Random.State.bool rng))
                    srcs
                in
                patterns := p :: !patterns;
                Flist.set_status fl i Status.Detected;
                ignore
                  (Olfu_fsim.Comb_fsim.run ~observe_captures
                     ~observable_output ~trace nl fl [| p |]
                    : Olfu_fsim.Comb_fsim.report)
              | Sat_atpg.Untestable ->
                incr sat_settled;
                decr aborted;
                incr proved;
                Flist.set_status fl i (Status.Undetectable Status.Redundant)
              | Sat_atpg.Unknown -> ()
            end)
          fl);
  if Trace.enabled trace && !sat_runs > 0 then begin
    Trace.record trace ~cat:"engine" ~dur:!sat_s "sat";
    Trace.add trace "sat.targets" !sat_runs
  end;
  if Trace.enabled trace then begin
    Trace.add trace "atpg.static_pruned" !static_pruned;
    Trace.add trace "atpg.proved_untestable" !proved;
    Trace.add trace "atpg.sat_settled" !sat_settled;
    Trace.add trace "atpg.patterns" (List.length !patterns)
  end;
  {
    patterns = List.rev !patterns;
    detected = Flist.count_status fl Status.Detected;
    static_pruned = !static_pruned;
    proved_untestable = !proved;
    aborted = !aborted;
    random_patterns = !random_patterns;
    sat_settled = !sat_settled;
    seconds = Unix.gettimeofday () -. t0;
  }

let compact ?observable_output ?(observe_captures = true)
    ?(trace = Trace.null) nl patterns =
  let fl = Flist.full nl in
  let kept = ref [] in
  List.iter
    (fun p ->
      let r =
        Olfu_fsim.Comb_fsim.run ~observe_captures ?observable_output ~trace nl
          fl [| p |]
      in
      if r.Olfu_fsim.Comb_fsim.detected > 0 then kept := p :: !kept)
    (List.rev patterns);
  !kept

let pp ppf r =
  Format.fprintf ppf
    "@[<v>patterns: %d (%d random + %d targeted)@,detected: %d@,statically \
     pruned: %d@,proved redundant: %d@,sat-settled: %d@,unresolved: \
     %d@,time: %.2f s@]"
    (List.length r.patterns) r.random_patterns
    (List.length r.patterns - r.random_patterns)
    r.detected r.static_pruned r.proved_untestable r.sat_settled r.aborted
    r.seconds
