open Olfu_netlist

(** SAT-based combinational equivalence checking on the full-access view.

    Inputs and flip-flops are matched by name across the two netlists (a
    name present on one side only becomes a free variable); the miter
    compares every commonly-named output port and flip-flop capture.

    The intended use is validating circuit manipulations: tying a set of
    inputs must leave the circuit equivalent to the original {e under the
    assumption that those inputs carry the tied values} — which is exactly
    the paper's premise that the mission configuration does not change
    mission behaviour. *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** named input/flip-flop assignment distinguishing the two *)
  | Unknown  (** conflict budget exhausted *)
  | No_common_observables

val check :
  ?assume:(string * bool) list ->
  ?conflict_limit:int ->
  Netlist.t ->
  Netlist.t ->
  verdict
(** [assume] fixes named inputs (on whichever side has them).  Raises
    [Invalid_argument] if an assumed name is missing on both sides. *)
