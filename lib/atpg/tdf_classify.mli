open Olfu_netlist
open Olfu_fault

(** On-line untestability for transition-delay faults.

    A transition fault needs its pin driven to {e both} values (launch)
    and the late transition propagated (capture).  Hence it is provably
    untestable whenever either same-site stuck-at fault is: a tied pin
    cannot launch, a blocked pin cannot capture.  This reduction keeps the
    verdicts sound and reuses the whole stuck-at engine — exactly the
    extension route the paper's conclusion sketches. *)

val verdict : Untestable.t -> Tdf.t -> Status.t option
(** [Some (Undetectable _)] when provably untestable in the analyzed
    configuration. *)

val verdict_with : Untestable.t -> Untestable.walker -> Tdf.t -> Status.t option
(** {!verdict} through an explicit walker — the multi-domain entry point. *)

val count : ?jobs:int -> Untestable.t -> Netlist.t -> int * int
(** [(untestable, universe)] over {!Tdf.universe}.  [jobs] (default
    {!Olfu_pool.Pool.default_jobs}) shards the universe across a domain
    pool with per-worker walkers; verdicts are pure per fault, so the
    count is identical for any [jobs]. *)
