open Olfu_fault
module Pool = Olfu_pool.Pool

let verdict_with t w (f : Tdf.t) =
  let sa0, sa1 = Tdf.as_stuck_pair f in
  match Untestable.verdict_with t w sa0 with
  | Some v -> Some v
  | None -> Untestable.verdict_with t w sa1

let verdict t (f : Tdf.t) =
  let sa0, sa1 = Tdf.as_stuck_pair f in
  match Untestable.fault_verdict t sa0 with
  | Some v -> Some v
  | None -> Untestable.fault_verdict t sa1

let count ?jobs t nl =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let u = Tdf.universe nl in
  let nu = Array.length u in
  let n = ref 0 in
  Pool.with_pool ~jobs (fun pool ->
      let nw = Pool.jobs pool in
      (* verdicts are pure in (t, fault) and every index is counted by
         exactly one worker, so the total is independent of [jobs] *)
      let walkers = Array.init nw (fun _ -> Untestable.make_walker t) in
      let wcount = Array.make nw 0 in
      Pool.parallel_chunks pool ~n:nu ~chunk:512 (fun ~worker ~lo ~hi ->
          let w = walkers.(worker) in
          for i = lo to hi - 1 do
            if verdict_with t w u.(i) <> None then
              wcount.(worker) <- wcount.(worker) + 1
          done);
      Array.iter (fun c -> n := !n + c) wcount);
  (!n, nu)
