open Olfu_fault

let verdict t (f : Tdf.t) =
  let sa0, sa1 = Tdf.as_stuck_pair f in
  match Untestable.fault_verdict t sa0 with
  | Some v -> Some v
  | None -> Untestable.fault_verdict t sa1

let count t nl =
  let u = Tdf.universe nl in
  let n =
    Array.fold_left
      (fun acc f -> if verdict t f <> None then acc + 1 else acc)
      0 u
  in
  (n, Array.length u)
