open Olfu_netlist
open Olfu_fault

(** Complete test-generation flow on the full-access (scan) view: random
    patterns with fault dropping until they stop paying off, then targeted
    PODEM for the survivors.  This is the classic two-phase ATPG a
    commercial tool runs after the untestable faults are pruned — the
    "reducing the test program generation effort" payoff the paper
    motivates.  A final SAT phase settles the faults branch-and-bound
    gives up on. *)

type config = {
  seed : int;  (** RNG seed for random patterns and X fill *)
  random_batch : int;  (** patterns per phase-1 batch *)
  max_random_batches : int;
  backtrack_limit : int;  (** PODEM backtrack budget per target *)
  use_sat : bool;  (** run the complete SAT prover on PODEM aborts *)
  sat_conflict_limit : int;
  observable_output : int -> bool;
      (** observation model for all phases; default full access, pass the
          mission observation to generate {e functional} tests *)
  observe_captures : bool;
  trace : Olfu_obs.Trace.sink;
      (** observability sink; {!Olfu_obs.Trace.null} records nothing *)
}

val default : config
(** [seed = 1], [random_batch = 64], [max_random_batches = 32],
    [backtrack_limit = 2000], [use_sat = true],
    [sat_conflict_limit = 50_000], full observation, captures observed,
    null trace.  Override with record update syntax:
    [{ Atpg_flow.default with use_sat = false }]. *)

type result = {
  patterns : Olfu_fsim.Comb_fsim.pattern list;  (** final compacted test set *)
  detected : int;
  static_pruned : int;
      (** classified untestable by the static engines (ternary constants,
          X-path blocking, implication conflicts) before any search ran *)
  proved_untestable : int;  (** search-exhausted: structurally redundant *)
  aborted : int;  (** unresolved after every phase *)
  random_patterns : int;  (** how many of the patterns came from phase 1 *)
  sat_settled : int;  (** PODEM aborts settled by the SAT prover *)
  seconds : float;
}

val run : config -> Netlist.t -> Flist.t -> result
(** A static phase 0 lets {!Untestable} (ternary constants, X-path
    blocking, and the {!Implic} conflict engine, under the per-frame
    [Cut] ff_mode matching the combinational pattern model) prune
    provably untestable faults before any search; it is skipped when
    [observe_captures] is off (the static walker credits FF captures).
    Then three search phases: random patterns with fault dropping,
    targeted PODEM, and (when [use_sat], the default) the complete SAT
    prover for whatever PODEM aborted on.  Updates the fault list in
    place ([Detected] / [Undetectable _] / [Atpg_untestable]); faults
    already classified are skipped, so running the OLFU flow first
    shrinks the ATPG effort (see the bench).  Phase 1 stops after a
    batch of [config.random_batch] patterns detects nothing new, or
    after [config.max_random_batches].

    With a recording [config.trace], each phase gets a ["step"]-category
    span and engine time is attributed to ["scoap"], ["ternary"] /
    ["observe"] / ["implic"] / ["classify"] (phase 0), ["fsim"],
    ["podem"] and ["sat"] spans (PODEM and SAT per-target times are
    accumulated into one span each). *)

val pp : Format.formatter -> result -> unit

val compact :
  ?observable_output:(int -> bool) ->
  ?observe_captures:bool ->
  ?trace:Olfu_obs.Trace.sink ->
  Netlist.t ->
  Olfu_fsim.Comb_fsim.pattern list ->
  Olfu_fsim.Comb_fsim.pattern list
(** Classic reverse-order compaction: replay the patterns newest-first
    with fault dropping over a fresh universe and keep only the ones that
    still detect something.  Coverage is preserved exactly. *)
