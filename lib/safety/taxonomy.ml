open Olfu_fault

type safe_class =
  | Structural_uc
  | Conflict_uc
  | Software_safe
  | Invariant_safe
  | Unclassified

let safe_classes =
  [| Structural_uc; Conflict_uc; Software_safe; Invariant_safe; Unclassified |]

let safe_name = function
  | Structural_uc -> "structural UC"
  | Conflict_uc -> "conflict UC"
  | Software_safe -> "software safe"
  | Invariant_safe -> "invariant safe"
  | Unclassified -> "unclassified"

let safe_code = function
  | Structural_uc -> "structural_uc"
  | Conflict_uc -> "conflict_uc"
  | Software_safe -> "software_safe"
  | Invariant_safe -> "invariant_safe"
  | Unclassified -> "unclassified"

let of_status = function
  | Status.Undetectable Status.Conflict -> Conflict_uc
  | Status.Undetectable Status.Software -> Software_safe
  | Status.Undetectable Status.Invariant -> Invariant_safe
  | Status.Undetectable _ -> Structural_uc
  | Status.Not_analyzed | Status.Detected | Status.Possibly_detected
  | Status.Atpg_untestable | Status.Not_detected ->
    Unclassified

type seu_class = Seu_masked | Seu_protected | Seu_vulnerable | Seu_unknown

let seu_classes = [| Seu_masked; Seu_protected; Seu_vulnerable; Seu_unknown |]

let seu_name = function
  | Seu_masked -> "SEU masked"
  | Seu_protected -> "SEU protected"
  | Seu_vulnerable -> "SEU vulnerable"
  | Seu_unknown -> "SEU unknown"

let seu_code = function
  | Seu_masked -> "masked"
  | Seu_protected -> "protected"
  | Seu_vulnerable -> "vulnerable"
  | Seu_unknown -> "unknown"
