open Olfu_netlist
open Olfu_fault

(** The unified safe-fault classifier.

    One run produces the whole safety story of a mission configuration:
    {ol
    {- the identification flow ({!Olfu.Flow.run}) assigns the structural
       and conflict verdicts exactly as Table I does;}
    {- the mission machine is re-analyzed with its ternary fixpoint
       strengthened by the software-proven constants
       ({!Olfu_absint.Absint.activation_facts}); every fault that proof
       newly closes is reclassified {!Olfu_fault.Status.Software}
       — safe {e relative to the analysed program set} (arXiv
       2009.11621's "new categories of safe faults");}
    {- the on-line machine (scan held functional) is re-analyzed with
       induction-proved state invariants ({!Olfu_invar}); every fault
       those certificates newly close is reclassified
       {!Olfu_fault.Status.Invariant} — safe relative to the proved
       reachable state over-approximation;}
    {- every flip-flop of a deterministic sample gets a transient
       verdict from the {!Seu} bounded model check, its pre-upset state
       constrained by the same proved invariants.}}

    The taxonomy is a partition by construction — classes are read off
    the final fault-list statuses — and the report carries an explicit
    [consistency] audit: the structural/conflict populations must be
    untouched by the software pass, no detected or previously classified
    fault may be rewritten, and the class counts must sum to the
    universe. *)

type config = {
  rc : Olfu.Run_config.t;  (** ff_mode / jobs / implic / trace *)
  window : int;  (** SEU latching window, cycles *)
  seu_limit : int;  (** flop sample size; [<= 0] checks every flop *)
  conflict_limit : int;  (** SAT budget per SEU query *)
  invariants : bool;
      (** run the {!Olfu_invar} engine and the invariant-safe pass
          (default [true]) *)
}

val default : config
(** {!Olfu.Run_config.default}, window 4, 64 flops, 50,000 conflicts,
    invariants on. *)

type report = {
  universe : int;
  flow : Olfu.Flow.report;  (** the underlying Table-I run *)
  classes : Taxonomy.safe_class array;  (** per fault index *)
  counts : (Taxonomy.safe_class * int) list;  (** partition sizes *)
  software_safe : int;  (** faults newly proved by the software pass *)
  software_by : (Status.undetectable * int) list;
      (** evidence behind the software-safe class: which engine closed
          the fault under the software assumptions (UT/UB/UC) *)
  assume_nodes : int;  (** resolved software assumptions on the machine *)
  facts : Olfu_absint.Absint.activation_facts;
  invariant_safe : int;
      (** faults newly proved by the invariant-strengthened pass *)
  invariant_by : (Status.undetectable * int) list;
      (** evidence behind the invariant-safe class (UT/UB/UC under the
          proved invariants) *)
  invariants : Olfu_invar.Invar.report option;
      (** the mine/filter/prove report ([None] when [config.invariants]
          is off) *)
  seu : Seu.report;
  bmc_netlist : Netlist.t;
      (** the machine the SEU axis was checked on (mission netlist with
          the scan interface held functional) — for external replay *)
  observable : int -> bool;  (** field-observable outputs of that machine *)
  consistency : string list;  (** violations; empty means consistent *)
  seconds : float;
}

val bmc_machine : Netlist.t -> Netlist.t
(** The on-line machine bounded model checks (and the invariant engine)
    run on: the mission netlist with the scan interface held functional
    ([scan_en] / [scan_in0] tied to 0 when present).  Only input kinds
    change, so node ids are stable — facts proved on this machine apply
    to the same ids of the mission netlist under the on-line
    assumption. *)

val run :
  ?config:config ->
  facts:Olfu_absint.Absint.activation_facts ->
  Netlist.t ->
  Olfu.Mission.t ->
  report
(** Classify the netlist under the given mission.  [facts] comes from
    {!Olfu_absint.Absint.activation_facts} over the analysed program
    set; with no resolvable facts the software pass is skipped (zero
    software-safe faults, never a claim).

    A recording trace (via [config.rc.trace]) gets the flow's spans plus
    ["Software safe"] and ["Invariant safe"] step spans, the
    {!Olfu_invar.Invar.run} and {!Seu.run} spans/counters, and the
    ["safety.software_safe"] / ["safety.invariant_safe"] /
    ["safety.unclassified"] counters. *)

val consistent : report -> bool

val pp : Format.formatter -> report -> unit
(** Human rendering: class table, software evidence split, SEU counts,
    consistency verdict. *)
