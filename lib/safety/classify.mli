open Olfu_netlist
open Olfu_fault

(** The unified safe-fault classifier.

    One run produces the whole safety story of a mission configuration:
    {ol
    {- the identification flow ({!Olfu.Flow.run}) assigns the structural
       and conflict verdicts exactly as Table I does;}
    {- the mission machine is re-analyzed with its ternary fixpoint
       strengthened by the software-proven constants
       ({!Olfu_absint.Absint.activation_facts}); every fault that proof
       newly closes is reclassified {!Olfu_fault.Status.Software}
       — safe {e relative to the analysed program set} (arXiv
       2009.11621's "new categories of safe faults");}
    {- every flip-flop of a deterministic sample gets a transient
       verdict from the {!Seu} bounded model check.}}

    The taxonomy is a partition by construction — classes are read off
    the final fault-list statuses — and the report carries an explicit
    [consistency] audit: the structural/conflict populations must be
    untouched by the software pass, no detected or previously classified
    fault may be rewritten, and the class counts must sum to the
    universe. *)

type config = {
  rc : Olfu.Run_config.t;  (** ff_mode / jobs / implic / trace *)
  window : int;  (** SEU latching window, cycles *)
  seu_limit : int;  (** flop sample size; [<= 0] checks every flop *)
  conflict_limit : int;  (** SAT budget per SEU query *)
}

val default : config
(** {!Olfu.Run_config.default}, window 4, 64 flops, 50,000 conflicts. *)

type report = {
  universe : int;
  flow : Olfu.Flow.report;  (** the underlying Table-I run *)
  classes : Taxonomy.safe_class array;  (** per fault index *)
  counts : (Taxonomy.safe_class * int) list;  (** partition sizes *)
  software_safe : int;  (** faults newly proved by the software pass *)
  software_by : (Status.undetectable * int) list;
      (** evidence behind the software-safe class: which engine closed
          the fault under the software assumptions (UT/UB/UC) *)
  assume_nodes : int;  (** resolved software assumptions on the machine *)
  facts : Olfu_absint.Absint.activation_facts;
  seu : Seu.report;
  bmc_netlist : Netlist.t;
      (** the machine the SEU axis was checked on (mission netlist with
          the scan interface held functional) — for external replay *)
  observable : int -> bool;  (** field-observable outputs of that machine *)
  consistency : string list;  (** violations; empty means consistent *)
  seconds : float;
}

val run :
  ?config:config ->
  facts:Olfu_absint.Absint.activation_facts ->
  Netlist.t ->
  Olfu.Mission.t ->
  report
(** Classify the netlist under the given mission.  [facts] comes from
    {!Olfu_absint.Absint.activation_facts} over the analysed program
    set; with no resolvable facts the software pass is skipped (zero
    software-safe faults, never a claim).

    A recording trace (via [config.rc.trace]) gets the flow's spans plus
    a ["Software safe"] step span, the {!Seu.run} span/counters, and the
    ["safety.software_safe"] / ["safety.unclassified"] counters. *)

val consistent : report -> bool

val pp : Format.formatter -> report -> unit
(** Human rendering: class table, software evidence split, SEU counts,
    consistency verdict. *)
