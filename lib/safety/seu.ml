open Olfu_netlist
module S = Olfu_sat.Solver
module CB = Olfu_atpg.Cnf.Builder
module Bmc = Olfu_atpg.Bmc
module Pool = Olfu_pool.Pool
module Trace = Olfu_obs.Trace
module Slice = Olfu_slice.Slice

type ff_result = { ff : int; cls : Taxonomy.seu_class; structural : bool }

type report = {
  window : int;
  total_ffs : int;
  results : ff_result array;
  masked : int;
  protected_ : int;
  vulnerable : int;
  unknown : int;
}

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let default_alarm nl o =
  match Netlist.name nl o with
  | None -> false
  | Some n ->
    let n = String.lowercase_ascii n in
    contains n "alarm" || contains n "parity" || contains n "err"
    || contains n "chk"

(* Over-approximate bounded observability: can a difference seeded at the
   flop reach a functional observation within [window] cycles?
   Combinational spread ignores controlling side inputs — a superset of
   every path the SAT encoding can sensitize — so "no" soundly means
   masked without touching the solver. *)
let reaches_observation nl ~window ~func_outs ff =
  let n = Netlist.length nl in
  let mark = Array.make n false in
  let seqs = Netlist.seq_nodes nl in
  let topo = Netlist.topo nl in
  let frontier = ref [ ff ] in
  let hit = ref false in
  let c = ref 0 in
  while (not !hit) && !frontier <> [] && !c < window do
    incr c;
    Array.fill mark 0 n false;
    List.iter (fun i -> mark.(i) <- true) !frontier;
    Array.iter
      (fun i ->
        if
          (not mark.(i))
          && Array.exists (fun d -> mark.(d)) (Netlist.fanin nl i)
        then mark.(i) <- true)
      topo;
    if List.exists (fun o -> mark.(o)) func_outs then hit := true
    else begin
      let next = ref [] in
      Array.iter
        (fun s ->
          if Array.exists (fun d -> mark.(d)) (Netlist.fanin nl s) then
            next := s :: !next)
        seqs;
      frontier := !next
    end
  done;
  !hit

(* Two-copy bounded encoding on [mnl] — the full machine or a certified
   backward slice of it.  [inv_lits b init] turns the proved invariants
   into unit literals over the cycle-0 state (empty when there are
   none); it receives the machine's own init array so the sliced caller
   can complete it with the out-of-slice flops. *)
let encode ~window ~conflict_limit mnl ~ff ~func_outs ~alarm_outs ~inv_lits
    =
  let s = S.create () in
  let b = CB.create s in
  let id_stem _ l = l in
  let id_op _ _ l = l in
  (* shared per-cycle input variables (reset held inactive — mission)
     and free variables for floating nets, exactly as {!Bmc.run} *)
  let input_vars =
    Array.init window (fun _ ->
        let tbl = Hashtbl.create 37 in
        Array.iter
          (fun i ->
            let v =
              if Netlist.has_role mnl i Netlist.Reset then CB.vtrue b
              else CB.fresh b
            in
            Hashtbl.replace tbl i v)
          (Netlist.inputs mnl);
        tbl)
  in
  let tiex_vars =
    Array.init window (fun _ ->
        let tbl = Hashtbl.create 7 in
        Netlist.iter_nodes
          (fun i nd ->
            if nd.Netlist.kind = Cell.Tiex then
              Hashtbl.replace tbl i (CB.fresh b))
          mnl;
        tbl)
  in
  let seqs = Netlist.seq_nodes mnl in
  let init =
    Array.map
      (fun i ->
        match Netlist.kind mnl i with
        | Cell.Dffr | Cell.Sdffr -> (i, -CB.vtrue b)
        | _ -> (i, CB.fresh b))
      seqs
  in
  (* reachable-state prefilter: the pre-upset state satisfies every
     proved invariant, so cycle 0 ranges over the invariant
     over-approximation of the reachable set instead of all 2^n
     states (the flipped copy is that state with one bit inverted —
     deliberately off-manifold) *)
  List.iter (fun l -> S.add_clause s [ l ]) (inv_lits b init);
  (* the upset machine: identical, except the target flop starts
     inverted — a single bit-flip latched just before cycle 0 *)
  let flipped =
    Array.map (fun (i, l) -> if i = ff then (i, -l) else (i, l)) init
  in
  let func_diffs = ref [] and alarm_diffs = ref [] in
  let good = ref init and bad = ref flipped in
  for c = 0 to window - 1 do
    let source_of state i =
      match Netlist.kind mnl i with
      | Cell.Input -> Hashtbl.find input_vars.(c) i
      | Cell.Tiex -> Hashtbl.find tiex_vars.(c) i
      | _ -> (
        match Array.find_opt (fun (j, _) -> j = i) state with
        | Some (_, l) -> l
        | None -> assert false)
    in
    let _, glit =
      Bmc.eval_cycle b mnl
        ~source:(source_of !good)
        ~inject_stem:id_stem ~inject_operand:id_op
    in
    let _, flit =
      Bmc.eval_cycle b mnl
        ~source:(source_of !bad)
        ~inject_stem:id_stem ~inject_operand:id_op
    in
    let observe outs sink =
      List.iter
        (fun o ->
          let d = (Netlist.fanin mnl o).(0) in
          let x = CB.mk_xor2 b (glit d) (flit d) in
          if not (CB.is_false b x) then sink := x :: !sink)
        outs
    in
    observe func_outs func_diffs;
    observe alarm_outs alarm_diffs;
    good := Bmc.next_state b mnl glit ~inject_operand:id_op;
    bad := Bmc.next_state b mnl flit ~inject_operand:id_op
  done;
  match !func_diffs with
  | [] -> Taxonomy.Seu_masked
  | ds -> (
    S.add_clause s ds;
    (* First ask for a diverging trace with every alarm silent; only if
       none exists, ask whether divergence is possible at all.  The
       functional-divergence clause is permanent; the alarm silence is
       assumptions, so one incremental solver answers both. *)
    let silent = List.map (fun d -> -d) !alarm_diffs in
    match S.solve ~assumptions:silent ~conflict_limit s with
    | S.Sat _ -> Taxonomy.Seu_vulnerable
    | S.Unknown -> Taxonomy.Seu_unknown
    | S.Unsat -> (
      if silent = [] then Taxonomy.Seu_masked
      else
        match S.solve ~conflict_limit s with
        | S.Sat _ -> Taxonomy.Seu_protected
        | S.Unsat -> Taxonomy.Seu_masked
        | S.Unknown -> Taxonomy.Seu_unknown))

let classify_ff ?(window = 4) ?(conflict_limit = 50_000)
    ?(observable_output = fun _ -> true) ?alarm ?(invariants = []) ?graph
    nl ff =
  if not (Cell.is_seq (Netlist.kind nl ff)) then
    invalid_arg "Seu.classify_ff: not a sequential node";
  let alarm = match alarm with Some f -> f | None -> default_alarm nl in
  let func_outs =
    Array.to_list (Netlist.outputs nl)
    |> List.filter (fun o -> observable_output o && not (alarm o))
  in
  let alarm_outs =
    Array.to_list (Netlist.outputs nl)
    |> List.filter (fun o -> observable_output o && alarm o)
  in
  if not (reaches_observation nl ~window ~func_outs ff) then
    { ff; cls = Taxonomy.Seu_masked; structural = true }
  else begin
    (* the invariants reference ORIGINAL flop ids: map kept flops to
       their machine init literal and complete the table with the
       out-of-slice ones at exactly the init the full encoding gives
       them (reset flops false, others free), so the constraint
       projected on the kept state is identical to the full machine's *)
    let run_on mnl ~ff ~func_outs ~alarm_outs ~old_of_new =
      let inv_lits b init =
        if invariants = [] then []
        else begin
          let tbl = Hashtbl.create 97 in
          Array.iter
            (fun (m, l) ->
              let d = old_of_new m in
              if d >= 0 then Hashtbl.replace tbl d l)
            init;
          Array.iter
            (fun i ->
              if not (Hashtbl.mem tbl i) then
                Hashtbl.replace tbl i
                  (match Netlist.kind nl i with
                  | Cell.Dffr | Cell.Sdffr -> -CB.vtrue b
                  | _ -> CB.fresh b))
            (Netlist.seq_nodes nl);
          Olfu_invar.Invar.state_literals b
            ~state_of:(Hashtbl.find tbl) invariants
        end
      in
      encode ~window ~conflict_limit mnl ~ff ~func_outs ~alarm_outs
        ~inv_lits
    in
    match graph with
    | None ->
      let cls =
        run_on nl ~ff ~func_outs ~alarm_outs ~old_of_new:(fun i -> i)
      in
      { ff; cls; structural = false }
    | Some g ->
      (* restrict to the outputs the flop can still influence across
         hard-severed edges; the rest compare equal in every model *)
      let fc =
        Slice.forward_flops g.Slice.hard_edges [ g.Slice.ford.(ff) ]
      in
      let influenced =
        let tbl = Hashtbl.create 17 in
        Array.iter
          (fun (o, sup) ->
            if Array.exists (fun s -> fc.(s)) sup then
              Hashtbl.replace tbl o ())
          g.Slice.hard_edges.Slice.out_deps;
        fun o -> Hashtbl.mem tbl o
      in
      let f_outs = List.filter influenced func_outs in
      let a_outs = List.filter influenced alarm_outs in
      if f_outs = [] then { ff; cls = Taxonomy.Seu_masked; structural = false }
      else begin
        let r = Slice.backward g ~targets:(ff :: (f_outs @ a_outs)) in
        let m d = r.Slice.new_of_old.(d) in
        let cls =
          run_on r.Slice.rnl ~ff:(m ff) ~func_outs:(List.map m f_outs)
            ~alarm_outs:(List.map m a_outs)
            ~old_of_new:(fun i -> r.Slice.old_of_new.(i))
        in
        { ff; cls; structural = false }
      end
  end

let sample_ffs ~limit seqs =
  let total = Array.length seqs in
  if limit <= 0 || limit >= total then Array.copy seqs
  else Array.init limit (fun k -> seqs.(k * total / limit))

let run ?(window = 4) ?(conflict_limit = 50_000) ?(limit = 0) ?jobs
    ?(trace = Trace.null) ?(observable_output = fun _ -> true) ?alarm
    ?(invariants = []) ?(sliced = true) nl =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  (* the slice graph is shared by every worker: build it before the
     pool so the memoized entry is published once *)
  let graph = if sliced then Some (Slice.get nl) else None in
  let seqs = Netlist.seq_nodes nl in
  let sample = sample_ffs ~limit seqs in
  let n = Array.length sample in
  let results =
    Array.make n { ff = -1; cls = Taxonomy.Seu_unknown; structural = false }
  in
  Trace.span trace ~cat:"engine" "seu" (fun () ->
      Pool.with_pool ~jobs (fun pool ->
          (* one flop per chunk: each index writes its own slot, so the
             report is identical for any [jobs].  A chunk here is an
             entire bounded model-check, so the pool's halving claims
             plus work stealing (rather than a fixed pre-split) is what
             keeps the skewed per-flop costs from serializing behind
             one worker *)
          Pool.parallel_chunks pool ~n ~chunk:1 ~trace ~label:"seu"
            (fun ~worker:_ ~lo ~hi ->
              for k = lo to hi - 1 do
                results.(k) <-
                  classify_ff ~window ~conflict_limit ~observable_output
                    ?alarm ~invariants ?graph nl sample.(k)
              done)));
  let count c =
    Array.fold_left
      (fun acc r -> if r.cls = c then acc + 1 else acc)
      0 results
  in
  let r =
    {
      window;
      total_ffs = Array.length seqs;
      results;
      masked = count Taxonomy.Seu_masked;
      protected_ = count Taxonomy.Seu_protected;
      vulnerable = count Taxonomy.Seu_vulnerable;
      unknown = count Taxonomy.Seu_unknown;
    }
  in
  if Trace.enabled trace then begin
    Trace.add trace "seu.checked" n;
    Trace.add trace "seu.masked" r.masked;
    Trace.add trace "seu.protected" r.protected_;
    Trace.add trace "seu.vulnerable" r.vulnerable;
    Trace.add trace "seu.unknown" r.unknown
  end;
  r
