open Olfu_fault

(** The unified safe-fault taxonomy.

    Every stuck-at fault of the mission configuration lands in exactly
    one class; the partition is built from the flow's final fault-list
    statuses, so the structural/conflict populations are — by
    construction — identical to the Table-I verdicts they come from.
    The transient axis ({!seu_class}) is orthogonal: it classifies
    flip-flops, not stuck-at faults. *)

type safe_class =
  | Structural_uc
      (** proven untestable by a structural argument (UU/UT/UB/UR):
          unconditionally safe in the mission configuration *)
  | Conflict_uc
      (** proven untestable by the static implication closure (UC) *)
  | Software_safe
      (** unproved structurally, but the activation condition contradicts
          software-proven constants (constant address/data bits,
          never-written memory): safe relative to the analysed program
          set (US) *)
  | Invariant_safe
      (** unproved by the above, but the analysis of the mission-held
          machine strengthened with induction-proved state invariants
          ({!Olfu_invar}) classifies it untestable: safe relative to the
          mission hold and the invariant certificates (UI) *)
  | Unclassified  (** no safety proof — assume dangerous *)

val safe_classes : safe_class array
(** All classes, report order. *)

val safe_name : safe_class -> string
val safe_code : safe_class -> string
(** Short machine key (["structural_uc"], ..., ["unclassified"]). *)

val of_status : Status.t -> safe_class
(** The partition rule: [Undetectable Conflict] is {!Conflict_uc},
    [Undetectable Software] is {!Software_safe}, [Undetectable
    Invariant] is {!Invariant_safe}, any other [Undetectable _] is
    {!Structural_uc}, everything else {!Unclassified}. *)

(** Per-flip-flop transient classification (OpenSEA-style), over a
    bounded latching window: what can a single bit-flip in this flop do
    before the window closes? *)
type seu_class =
  | Seu_masked
      (** no reachable input sequence makes any functional output diverge
          within the window *)
  | Seu_protected
      (** some divergence is possible, but every diverging trace also
          diverges on an alarm output within the window — the protection
          circuitry flags the upset *)
  | Seu_vulnerable
      (** some trace diverges functionally with every alarm silent *)
  | Seu_unknown  (** solver budget exhausted — no claim *)

val seu_classes : seu_class array
val seu_name : seu_class -> string
val seu_code : seu_class -> string
(** ["masked"], ["protected"], ["vulnerable"], ["unknown"]. *)
