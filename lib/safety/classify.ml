open Olfu_netlist
open Olfu_fault
module U = Olfu_atpg.Untestable
module Ternary = Olfu_atpg.Ternary
module Trace = Olfu_obs.Trace
module Absint = Olfu_absint.Absint
module Script = Olfu_manip.Script
module Invar = Olfu_invar.Invar

type config = {
  rc : Olfu.Run_config.t;
  window : int;
  seu_limit : int;
  conflict_limit : int;
  invariants : bool;
}

let default =
  {
    rc = Olfu.Run_config.default;
    window = 4;
    seu_limit = 64;
    conflict_limit = 50_000;
    invariants = true;
  }

type report = {
  universe : int;
  flow : Olfu.Flow.report;
  classes : Taxonomy.safe_class array;
  counts : (Taxonomy.safe_class * int) list;
  software_safe : int;
  software_by : (Status.undetectable * int) list;
  assume_nodes : int;
  facts : Absint.activation_facts;
  invariant_safe : int;
  invariant_by : (Status.undetectable * int) list;
  invariants : Invar.report option;
  seu : Seu.report;
  bmc_netlist : Netlist.t;
  observable : int -> bool;
  consistency : string list;
  seconds : float;
}

(* The verdict classes the flow can assign, for the invariance check. *)
let base_classes =
  [|
    Status.Unused; Status.Tied; Status.Blocked; Status.Conflict;
    Status.Redundant;
  |]

let base_tally statuses =
  Array.map
    (fun c ->
      Array.fold_left
        (fun acc st ->
          if Status.equal st (Status.Undetectable c) then acc + 1 else acc)
        0 statuses)
    base_classes

(* The BMC machine: the mission netlist with the scan interface held
   functional, as in the implication-oracle spot checks. *)
let bmc_machine mnl =
  let script =
    List.filter_map
      (fun n ->
        if Netlist.find mnl n <> None then
          Some (Script.Tie_input (n, Olfu_logic.Logic4.L0))
        else None)
      [ "scan_en"; "scan_in0" ]
  in
  if script = [] then mnl else Script.apply mnl script

let run ?(config = default) ~facts nl mission =
  let rc = config.rc in
  let trace = rc.Olfu.Run_config.trace in
  let t0 = Unix.gettimeofday () in
  (* 1. the existing identification flow: structural + conflict verdicts *)
  let flow = Olfu.Flow.run rc nl mission in
  let fl = flow.Olfu.Flow.flist in
  let mnl = flow.Olfu.Flow.mission_netlist in
  let size = Flist.size fl in
  let before = Array.init size (Flist.status fl) in
  let observable = Olfu.Mission.observed_in_field mission mnl in
  (* 2. software-safe: re-analyze the mission machine with the ternary
     fixpoint strengthened by the software-proven constants, then turn
     every newly proved verdict into the Software class (the underlying
     Tied/Blocked/Conflict proof is kept as evidence) *)
  let assume = Absint.facts_assume facts mnl in
  let software_safe =
    if assume = [] then 0
    else begin
      let consts =
        Trace.span trace ~cat:"engine" "ternary" (fun () ->
            Ternary.run ~ff_mode:rc.Olfu.Run_config.ff_mode ~assume mnl)
      in
      let tsw =
        U.analyze ~observable_output:observable ~consts
          ~implic:rc.Olfu.Run_config.implic ~trace mnl
      in
      Trace.span trace ~cat:"step" "Software safe" (fun () ->
          U.classify ~jobs:rc.Olfu.Run_config.jobs ~trace tsw fl)
    end
  in
  let sw_by = Array.make (Array.length base_classes) 0 in
  for i = 0 to size - 1 do
    let now = Flist.status fl i in
    if not (Status.equal before.(i) now) then begin
      Array.iteri
        (fun k c ->
          if Status.equal now (Status.Undetectable c) then
            sw_by.(k) <- sw_by.(k) + 1)
        base_classes;
      Flist.set_status fl i (Status.Undetectable Status.Software)
    end
  done;
  let software_by =
    Array.to_list
      (Array.map2 (fun c n -> (c, n)) base_classes sw_by)
    |> List.filter (fun (_, n) -> n > 0)
  in
  (* 2b. invariant-safe: the on-line machine (scan interface held
     functional), re-analyzed with induction-proved state invariants —
     assumed constants strengthen the ternary fixpoint, pairwise facts
     strengthen the implication database.  Newly proved verdicts become
     the Invariant class, keeping the underlying evidence tally. *)
  let machine = bmc_machine mnl in
  let invariants =
    if config.invariants then
      Some (Invar.run ~jobs:rc.Olfu.Run_config.jobs ~trace machine)
    else None
  in
  let before_inv = Array.init size (Flist.status fl) in
  let invariant_safe =
    match invariants with
    | None -> 0
    | Some ir ->
      let consts =
        Trace.span trace ~cat:"engine" "ternary" (fun () ->
            Ternary.run ~ff_mode:rc.Olfu.Run_config.ff_mode
              ~assume:(Invar.assume_facts ir) machine)
      in
      let tin =
        U.analyze ~observable_output:observable ~consts
          ~implic:rc.Olfu.Run_config.implic ~extra_edges:(Invar.edges ir)
          ~trace machine
      in
      Trace.span trace ~cat:"step" "Invariant safe" (fun () ->
          U.classify ~jobs:rc.Olfu.Run_config.jobs ~trace tin fl)
  in
  let inv_by = Array.make (Array.length base_classes) 0 in
  for i = 0 to size - 1 do
    let now = Flist.status fl i in
    if not (Status.equal before_inv.(i) now) then begin
      Array.iteri
        (fun k c ->
          if Status.equal now (Status.Undetectable c) then
            inv_by.(k) <- inv_by.(k) + 1)
        base_classes;
      Flist.set_status fl i (Status.Undetectable Status.Invariant)
    end
  done;
  let invariant_by =
    Array.to_list (Array.map2 (fun c n -> (c, n)) base_classes inv_by)
    |> List.filter (fun (_, n) -> n > 0)
  in
  (* 3. the partition *)
  let classes =
    Array.init size (fun i -> Taxonomy.of_status (Flist.status fl i))
  in
  let count c =
    Array.fold_left
      (fun acc x -> if x = c then acc + 1 else acc)
      0 classes
  in
  let counts =
    Array.to_list (Array.map (fun c -> (c, count c)) Taxonomy.safe_classes)
  in
  (* 4. transient axis on the BMC machine, with the proved invariants
     restricting the pre-upset state to the reachable
     over-approximation *)
  let bmc_nl = machine in
  let seu =
    Seu.run ~window:config.window ~conflict_limit:config.conflict_limit
      ~limit:config.seu_limit ~jobs:rc.Olfu.Run_config.jobs ~trace
      ~observable_output:observable
      ~invariants:
        (match invariants with Some ir -> ir.Invar.proved | None -> [])
      bmc_nl
  in
  (* 5. consistency against the pre-software verdicts *)
  let violations = ref [] in
  let note fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let after = Array.init size (Flist.status fl) in
  let tb = base_tally before and ta = base_tally after in
  Array.iteri
    (fun k c ->
      if tb.(k) <> ta.(k) then
        note "%s count changed: %d -> %d"
          (Status.code (Status.Undetectable c))
          tb.(k) ta.(k))
    base_classes;
  Array.iteri
    (fun i st ->
      match (st, classes.(i)) with
      | Status.Detected, Taxonomy.Software_safe ->
        note "fault %d both detected and software-safe" i
      | Status.Detected, Taxonomy.Invariant_safe ->
        note "fault %d both detected and invariant-safe" i
      | (Status.Detected | Status.Possibly_detected | Status.Undetectable _),
        _
        when not (Status.equal st after.(i)) ->
        note "fault %d verdict rewritten: %s -> %s" i (Status.code st)
          (Status.code after.(i))
      | _ -> ())
    before;
  if List.fold_left (fun acc (_, n) -> acc + n) 0 counts <> size then
    note "class counts do not partition the universe";
  if Trace.enabled trace then begin
    Trace.add trace "safety.software_safe" software_safe;
    Trace.add trace "safety.invariant_safe" invariant_safe;
    Trace.add trace "safety.unclassified"
      (count Taxonomy.Unclassified)
  end;
  {
    universe = size;
    flow;
    classes;
    counts;
    software_safe;
    software_by;
    assume_nodes = List.length assume;
    facts;
    invariant_safe;
    invariant_by;
    invariants;
    seu;
    bmc_netlist = bmc_nl;
    observable;
    consistency = List.rev !violations;
    seconds = Unix.gettimeofday () -. t0;
  }

let consistent r = r.consistency = []

let pp ppf r =
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 r.universe) in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "safe-fault taxonomy (universe %d)@," r.universe;
  List.iter
    (fun (c, n) ->
      Format.fprintf ppf "  %-14s %8d  %5.1f%%@," (Taxonomy.safe_name c) n
        (pct n))
    r.counts;
  if r.software_by <> [] then begin
    Format.fprintf ppf "  software-safe evidence:";
    List.iter
      (fun (c, n) ->
        Format.fprintf ppf " %s=%d" (Status.code (Status.Undetectable c)) n)
      r.software_by;
    Format.fprintf ppf "  (%d software-assumed nodes, facts: %s)@,"
      r.assume_nodes r.facts.Absint.af_label
  end;
  (match r.invariants with
  | None -> ()
  | Some ir ->
    Format.fprintf ppf
      "  invariants: %d proved (k=%d) of %d mined; invariant-safe \
       evidence:"
      (List.length ir.Invar.proved)
      ir.Invar.k
      (List.length ir.Invar.mined);
    if r.invariant_by = [] then Format.fprintf ppf " none"
    else
      List.iter
        (fun (c, n) ->
          Format.fprintf ppf " %s=%d" (Status.code (Status.Undetectable c)) n)
        r.invariant_by;
    Format.fprintf ppf "@,");
  Format.fprintf ppf
    "SEU axis (window %d): %d/%d flops checked — masked %d, protected %d, \
     vulnerable %d, unknown %d@,"
    r.seu.Seu.window
    (Array.length r.seu.Seu.results)
    r.seu.Seu.total_ffs r.seu.Seu.masked r.seu.Seu.protected_
    r.seu.Seu.vulnerable r.seu.Seu.unknown;
  (match r.consistency with
  | [] -> Format.fprintf ppf "consistency: OK@,"
  | vs ->
    List.iter (fun v -> Format.fprintf ppf "consistency VIOLATION: %s@," v) vs);
  Format.fprintf ppf "analysis time: %.3f s@]" r.seconds
