open Olfu_netlist

(** Per-flip-flop SEU classification by bounded model checking
    (OpenSEA-style, arXiv 1712.04291).

    Two copies of the mission machine are unrolled over a bounded
    latching window with shared inputs (reset held inactive, resettable
    flops starting at 0, plain flops at a solver-chosen but equal
    power-up value), except that the target flop starts {e inverted} in
    the second copy — a single-event upset latched just before cycle 0.
    Three outcomes:
    {ul
    {- no input sequence makes a functional output diverge within the
       window: the upset is {e masked};}
    {- divergence is possible but every diverging trace also diverges on
       an alarm output within the window: the upset is {e protected} —
       the checker circuitry flags it;}
    {- some trace diverges with every alarm silent: {e vulnerable}.}}

    All claims are bounded: "masked"/"protected" hold for the window
    only (the concrete cross-check, {!Olfu_fsim.Seq_fsim.run_seu},
    replays the same window).  A solver [Unknown] is never narrowed —
    the class stays {!Taxonomy.Seu_unknown}. *)

type ff_result = {
  ff : int;  (** the sequential node *)
  cls : Taxonomy.seu_class;
  structural : bool;
      (** masked by bounded reachability alone (no path from the flop to
          a functional observation within the window) — no SAT call *)
}

type report = {
  window : int;
  total_ffs : int;  (** sequential cells in the netlist *)
  results : ff_result array;  (** one per checked flop (the sample) *)
  masked : int;
  protected_ : int;
  vulnerable : int;
  unknown : int;
}

val default_alarm : Netlist.t -> int -> bool
(** Name-based alarm-output recognition: the output net name contains
    ["alarm"], ["parity"], ["err"] or ["chk"] (case-insensitive). *)

val classify_ff :
  ?window:int ->
  ?conflict_limit:int ->
  ?observable_output:(int -> bool) ->
  ?alarm:(int -> bool) ->
  ?invariants:Olfu_invar.Invar.invariant list ->
  ?graph:Olfu_slice.Slice.t ->
  Netlist.t ->
  int ->
  ff_result
(** Classify one flop.  [window] (default 4) is the latching window in
    cycles; [conflict_limit] (default 50,000) bounds each SAT query.
    [observable_output] selects the outputs the field can check;
    [alarm] (default {!default_alarm}) splits them into functional and
    alarm outputs.  [invariants] (proved on this machine — see
    {!Olfu_invar}) constrain the pre-upset cycle-0 state to the proved
    reachable over-approximation: a sound strengthening that prunes
    upset states no mission run can reach and typically speeds the
    queries up.

    [graph] (the netlist's {!Olfu_slice.Slice} graph) switches the
    encoding to the flop's certified backward slice: only the outputs
    the flop can still influence across hard-severed edges are encoded,
    on the reduced machine that decides them.  Outputs outside that
    cone compare equal in every model and invariants are completed with
    the out-of-slice flops at their full-machine init, so the verdict
    is the one the full encoding returns — just on a far smaller CNF.
    Raises [Invalid_argument] on a non-sequential node. *)

val run :
  ?window:int ->
  ?conflict_limit:int ->
  ?limit:int ->
  ?jobs:int ->
  ?trace:Olfu_obs.Trace.sink ->
  ?observable_output:(int -> bool) ->
  ?alarm:(int -> bool) ->
  ?invariants:Olfu_invar.Invar.invariant list ->
  ?sliced:bool ->
  Netlist.t ->
  report
(** Classify a deterministic, evenly strided sample of [limit] flops,
    sharded one flop per chunk over a {!Olfu_pool.Pool} of [jobs]
    workers; each flop's verdict is independent, so the report is
    identical for any [jobs].

    [sliced] (default [true]) classifies each flop on its backward
    slice (see [graph] above) instead of the full machine — the same
    verdicts, computed tractably enough to run with [limit <= 0] on a
    whole core.

    Sampling: [limit <= 0] (or [limit >= total]) checks {e every} flop;
    otherwise flop [k] of the sample is sequential node
    [seqs.(k * total / limit)] — a fixed even stride over the netlist's
    sequential-node order, so the same netlist and limit always select
    the same flops (no randomness anywhere).

    A recording [trace] gets an ["engine"]-category ["seu"] span and the
    jobs-invariant counters ["seu.checked"], ["seu.masked"],
    ["seu.protected"], ["seu.vulnerable"], ["seu.unknown"]. *)
