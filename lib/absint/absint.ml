open Olfu_logic
open Olfu_soc
open Olfu_sbst
module Memmap = Olfu_manip.Memmap
module Script = Olfu_manip.Script
module Netlist = Olfu_netlist.Netlist

(* Sound abstract interpretation of tcore images: a worklist fixpoint
   over the word-indexed CFG with {!Aval} register states, plus an outer
   fixpoint over a flow-insensitive abstract store (weak updates).  Any
   situation the abstraction cannot bound — a store that may fall into
   the program image, an indirect jump with unbounded targets, control
   leaving the image — degrades the whole result, and every query then
   answers with its top ("nothing proven"), keeping all claims sound. *)

type access = { a_addr : Aval.t; a_value : Aval.t }

type t = {
  xlen : int;
  origin : int;
  entry : int;
  image : int array;
  pre : Aval.t array option array;  (* register state before each word *)
  stores : (int * access) list;  (* by word index of the Sw *)
  loads : (int * access) list;  (* addr and result of each Lw *)
  degraded : string option;
  passes : int;
}

exception Degrade of string
exception Explode

let sext8 v = if v land 0x80 <> 0 then v - 256 else v

let hull_overlap av ~lo ~hi =
  match Aval.bounds av with
  | None -> false
  | Some (l, h) -> l <= hi && h >= lo

let analyze ?(xlen = 16) ?(origin = 0) ?entry image =
  if xlen < 16 then invalid_arg "Absint.analyze: xlen >= 16";
  let m = (1 lsl xlen) - 1 in
  let n = Array.length image in
  if n = 0 then invalid_arg "Absint.analyze: empty image";
  if origin < 0 || origin + n - 1 > m then
    invalid_arg "Absint.analyze: image outside the address space";
  let entry = Option.value ~default:origin entry in
  if entry < origin || entry >= origin + n then
    invalid_arg "Absint.analyze: entry outside the image";
  let instrs = Array.map Isa.decode image in
  let pre : Aval.t array option array = Array.make n None in
  let stores : (int, access) Hashtbl.t = Hashtbl.create 16 in
  let loads : (int, access) Hashtbl.t = Hashtbl.create 16 in
  let store_changed = ref false in
  let wl = Queue.create () in
  let record_store i addr value =
    (* a store we cannot keep away from the image could rewrite the
       program under us: give up instead of guessing *)
    if hull_overlap addr ~lo:origin ~hi:(origin + n - 1) then
      raise
        (Degrade
           (Printf.sprintf "store at 0x%X may overwrite the program image"
              (origin + i)));
    match Hashtbl.find_opt stores i with
    | None ->
      Hashtbl.replace stores i { a_addr = addr; a_value = value };
      store_changed := true
    | Some old ->
      let a = Aval.widen old.a_addr addr and v = Aval.widen old.a_value value in
      if not (Aval.equal a old.a_addr && Aval.equal v old.a_value) then begin
        Hashtbl.replace stores i { a_addr = a; a_value = v };
        store_changed := true
      end
  in
  let record_load i addr value =
    (* same widening discipline as [record_store]: the instruction runs
       once per distinct abstract state in explore mode, and the recorded
       access must cover every one of them, not just the last *)
    match Hashtbl.find_opt loads i with
    | None -> Hashtbl.replace loads i { a_addr = addr; a_value = value }
    | Some old ->
      let a = Aval.widen old.a_addr addr and v = Aval.widen old.a_value value in
      if not (Aval.equal a old.a_addr && Aval.equal v old.a_value) then
        Hashtbl.replace loads i { a_addr = a; a_value = v }
  in
  let load_value addr =
    (* never-written memory reads 0; the image and any may-aliasing
       store contribute their values *)
    let acc = ref (Aval.exact xlen 0) in
    if hull_overlap addr ~lo:origin ~hi:(origin + n - 1) then
      for i = 0 to n - 1 do
        if Aval.contains addr (origin + i) then
          acc := Aval.join !acc (Aval.exact xlen image.(i))
      done;
    Hashtbl.iter
      (fun _ s ->
        let may_alias =
          match (Aval.values addr, Aval.values s.a_addr) with
          | Some xs, Some ys -> List.exists (fun x -> List.mem x ys) xs
          | _ -> (
            match (Aval.bounds addr, Aval.bounds s.a_addr) with
            | Some (l1, h1), Some (l2, h2) -> l1 <= h2 && l2 <= h1
            | _ -> false)
        in
        if may_alias then acc := Aval.join !acc s.a_value)
      stores;
    !acc
  in
  let bounds_check tgt =
    if tgt < origin || tgt >= origin + n then
      raise
        (Degrade (Printf.sprintf "control reaches 0x%X outside the image" tgt))
  in
  (* join-mode flow: widen states into one abstract state per word *)
  let join_flow tgt st =
    bounds_check tgt;
    let i = tgt - origin in
    match pre.(i) with
    | None ->
      pre.(i) <- Some (Array.copy st);
      Queue.add i wl
    | Some old ->
      let changed = ref false in
      for r = 0 to 15 do
        let j = Aval.widen old.(r) st.(r) in
        if not (Aval.equal j old.(r)) then begin
          old.(r) <- j;
          changed := true
        end
      done;
      if !changed then Queue.add i wl
  in
  let exec ~flow i st =
    let pc = origin + i in
    let next = (pc + 1) land m in
    let straight f =
      let st' = Array.copy st in
      f st';
      flow next st'
    in
    let binop rd rs f = straight (fun s -> s.(rd) <- f st.(rd) st.(rs)) in
    let branch rs off ~taken_on_zero =
      let tgt = (next + sext8 off) land m in
      let zero_dst = if taken_on_zero then tgt else next
      and nz_dst = if taken_on_zero then next else tgt in
      (match Aval.refine_eq st.(rs) 0 with
      | Some z ->
        let s = Array.copy st in
        s.(rs) <- z;
        flow zero_dst s
      | None -> ());
      match Aval.refine_ne st.(rs) 0 with
      | Some nz ->
        let s = Array.copy st in
        s.(rs) <- nz;
        flow nz_dst s
      | None -> ()
    in
    match instrs.(i) with
    | Isa.Nop -> straight (fun _ -> ())
    | Isa.Li (rd, v) -> straight (fun s -> s.(rd) <- Aval.exact xlen (v land 0xFF))
    | Isa.Addi (rd, v) ->
      straight (fun s -> s.(rd) <- Aval.add st.(rd) (Aval.exact xlen (sext8 v)))
    | Isa.Add (rd, rs) -> binop rd rs Aval.add
    | Isa.Sub (rd, rs) -> binop rd rs Aval.sub
    | Isa.And_ (rd, rs) -> binop rd rs Aval.logand
    | Isa.Or_ (rd, rs) -> binop rd rs Aval.logor
    | Isa.Xor_ (rd, rs) -> binop rd rs Aval.logxor
    | Isa.Mul (rd, rs) -> binop rd rs Aval.mul
    | Isa.Mulh (rd, rs) -> binop rd rs Aval.mulh
    | Isa.Div (rd, rs) -> binop rd rs Aval.div
    | Isa.Rem (rd, rs) -> binop rd rs Aval.rem_
    | Isa.Sll (rd, sh) -> straight (fun s -> s.(rd) <- Aval.shift_left st.(rd) sh)
    | Isa.Srl (rd, sh) ->
      straight (fun s -> s.(rd) <- Aval.shift_right st.(rd) sh)
    | Isa.Lw (rd, rs) ->
      let v = load_value st.(rs) in
      record_load i st.(rs) v;
      straight (fun s -> s.(rd) <- v)
    | Isa.Sw (rd, rs) ->
      record_store i st.(rs) st.(rd);
      straight (fun _ -> ())
    | Isa.Beqz (rs, off) -> branch rs off ~taken_on_zero:true
    | Isa.Bnez (rs, off) -> branch rs off ~taken_on_zero:false
    | Isa.Jr rs -> (
      match Aval.values st.(rs) with
      | Some tgts -> List.iter (fun tgt -> flow tgt (Array.copy st)) tgts
      | None ->
        raise
          (Degrade
             (Printf.sprintf "indirect jump at 0x%X with unbounded target" pc)))
    | Isa.Halt -> ()
  in
  let reset_pass () =
    Array.fill pre 0 n None;
    Hashtbl.reset loads;
    store_changed := false
  in
  let entry_state () = Array.init 16 (fun _ -> Aval.exact xlen 0) in
  (* Exact exploration: the collecting semantics without joins.  Each
     distinct abstract register state is propagated separately (skipping
     states subsumed by one already seen at that word), so a counted loop
     is effectively unrolled its concrete number of iterations and an
     incremented pointer never needs a widen.  SBST routines are small and
     terminating, so this converges in about trace-length steps; a budget
     guards against pathological inputs, falling back to the join/widen
     fixpoint below. *)
  let explore_pass () =
    reset_pass ();
    let visited : Aval.t array list array = Array.make n [] in
    let q = Queue.create () in
    let budget = ref 200_000 in
    let state_leq a b =
      let ok = ref true in
      for r = 0 to 15 do
        if not (Aval.equal (Aval.join a.(r) b.(r)) b.(r)) then ok := false
      done;
      !ok
    in
    let flow tgt st =
      bounds_check tgt;
      let i = tgt - origin in
      if not (List.exists (state_leq st) visited.(i)) then begin
        visited.(i) <- Array.copy st :: visited.(i);
        (match pre.(i) with
        | None -> pre.(i) <- Some (Array.copy st)
        | Some old ->
          for r = 0 to 15 do
            old.(r) <- Aval.join old.(r) st.(r)
          done);
        Queue.add (i, Array.copy st) q
      end
    in
    flow entry (entry_state ());
    while not (Queue.is_empty q) do
      let i, st = Queue.pop q in
      decr budget;
      if !budget < 0 then raise Explode;
      exec ~flow i st
    done
  in
  let join_pass () =
    reset_pass ();
    pre.(entry - origin) <- Some (entry_state ());
    Queue.add (entry - origin) wl;
    while not (Queue.is_empty wl) do
      let i = Queue.pop wl in
      match pre.(i) with None -> () | Some st -> exec ~flow:join_flow i (Array.copy st)
    done
  in
  let run_pass () = try explore_pass () with Explode -> join_pass () in
  let passes = ref 0 in
  let degraded = ref None in
  (try
     let continue_ = ref true in
     while !continue_ do
       incr passes;
       if !passes > 64 then raise (Degrade "abstract store did not converge");
       run_pass ();
       if not !store_changed then continue_ := false
     done
   with Degrade msg ->
     Queue.clear wl;
     degraded := Some msg);
  let dump tbl =
    Hashtbl.fold (fun i a acc -> (i, a) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    xlen;
    origin;
    entry;
    image;
    pre;
    stores = dump stores;
    loads = dump loads;
    degraded = !degraded;
    passes = !passes;
  }

let of_items ?entry cfg items =
  let origin = cfg.Soc.rom.Memmap.lo in
  analyze ~xlen:cfg.Soc.xlen ~origin ?entry (Asm.assemble ~origin items)

let of_program cfg (p : Programs.t) = of_items cfg p.Programs.items
let degraded t = t.degraded
let passes t = t.passes
let image_length t = Array.length t.image
let origin t = t.origin

let pc_reachable t pc =
  match t.degraded with
  | Some _ -> true
  | None ->
    pc >= t.origin && pc < t.origin + Array.length t.image
    && t.pre.(pc - t.origin) <> None

let dead_pcs t =
  match t.degraded with
  | Some _ -> []
  | None ->
    let acc = ref [] in
    for i = Array.length t.image - 1 downto 0 do
      if t.pre.(i) = None then acc := (t.origin + i) :: !acc
    done;
    !acc

let reg_at t ~pc r =
  match t.degraded with
  | Some _ -> Aval.top t.xlen
  | None ->
    if pc < t.origin || pc >= t.origin + Array.length t.image then Aval.bot t.xlen
    else (
      match t.pre.(pc - t.origin) with
      | None -> Aval.bot t.xlen
      | Some st -> st.(r))

let reg_join t r =
  match t.degraded with
  | Some _ -> Aval.top t.xlen
  | None ->
    Array.fold_left
      (fun acc st ->
        match st with None -> acc | Some st -> Aval.join acc st.(r))
      (Aval.bot t.xlen) t.pre

let may_write t ~addr =
  match t.degraded with
  | Some _ -> true
  | None -> List.exists (fun (_, s) -> Aval.contains s.a_addr addr) t.stores

let store_value t ~addr =
  match t.degraded with
  | Some _ -> Aval.top t.xlen
  | None ->
    List.fold_left
      (fun acc (_, s) ->
        if Aval.contains s.a_addr addr then Aval.join acc s.a_value else acc)
      (Aval.bot t.xlen) t.stores

let store_sites t = List.length t.stores

let may_read t ~addr =
  match t.degraded with
  | Some _ -> true
  | None -> List.exists (fun (_, s) -> Aval.contains s.a_addr addr) t.loads

let load_result t ~addr =
  match t.degraded with
  | Some _ -> Aval.top t.xlen
  | None ->
    List.fold_left
      (fun acc (_, s) ->
        if Aval.contains s.a_addr addr then Aval.join acc s.a_value else acc)
      (Aval.bot t.xlen) t.loads

(* --- address-bit queries ------------------------------------------------ *)

(* toggle-join: a bit is constant only while every access agrees on it,
   and an unknown access poisons it for good (unlike Logic4.merge, whose
   X is the bottom of the information ordering) *)
let bjoin a b =
  match (a, b) with
  | Logic4.X, _ | _, Logic4.X -> Logic4.X
  | a, b -> if Logic4.equal a b then a else Logic4.X

let fold_accesses t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i st -> if st <> None then acc := f !acc (Aval.exact t.xlen (t.origin + i)))
    t.pre;
  List.iter (fun (_, s) -> acc := f !acc s.a_addr) t.loads;
  List.iter (fun (_, s) -> acc := f !acc s.a_addr) t.stores;
  !acc

let addr_bit ts ~bit =
  if List.exists (fun t -> t.degraded <> None) ts then Logic4.X
  else
    List.fold_left
      (fun acc t ->
        fold_accesses t ~init:acc ~f:(fun acc av ->
            match acc with
            | Some b -> Some (bjoin b (Aval.bit av bit))
            | None -> Some (Aval.bit av bit)))
      None ts
    |> Option.value ~default:Logic4.X

let constant_addr_bits ~width ts =
  List.filter_map
    (fun bit ->
      match addr_bit ts ~bit with
      | Logic4.L0 -> Some (bit, false)
      | Logic4.L1 -> Some (bit, true)
      | _ -> None)
    (List.init width (fun i -> i))

let region_covers (r : Memmap.region) av =
  match Aval.values av with
  | Some vs -> vs <> [] && List.for_all (fun v -> r.Memmap.lo <= v && v <= r.hi) vs
  | None -> (
    match Aval.bounds av with
    | None -> true
    | Some (lo, hi) -> r.Memmap.lo <= lo && hi <= r.hi)

let covered regions av =
  match Aval.values av with
  | Some vs ->
    List.for_all
      (fun v -> List.exists (fun r -> r.Memmap.lo <= v && v <= r.hi) regions)
      vs
  | None -> List.exists (fun r -> region_covers r av) regions

let touched_regions ts regions =
  List.filter
    (fun (r : Memmap.region) ->
      List.exists
        (fun t ->
          t.degraded <> None
          || fold_accesses t ~init:false ~f:(fun acc av ->
                 acc || hull_overlap av ~lo:r.Memmap.lo ~hi:r.hi))
        ts)
    regions

let region_constant_bits ~width ts regions =
  match touched_regions ts regions with
  | [] -> []
  | touched -> Memmap.constant_bits ~width touched

type check = { ok : bool; violations : string list }

let cross_check ~width ts regions =
  let violations = ref [] in
  let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun t ->
      match t.degraded with
      | Some msg -> add "analysis degraded: %s" msg
      | None ->
        ignore
          (fold_accesses t ~init:0 ~f:(fun k av ->
               if not (covered regions av) then
                 add "access #%d %a escapes every mapped region" k Aval.pp av;
               k + 1)))
    ts;
  if not (List.exists (fun t -> t.degraded <> None) ts) then
    List.iter
      (fun (bit, v) ->
        match addr_bit ts ~bit with
        | Logic4.X ->
          add "address bit %d is map-constant %b but not program-constant" bit v
        | b ->
          if Logic4.to_bool b <> Some v then
            add "address bit %d: program drives %a, map says constant %b" bit
              Logic4.pp b v)
      (region_constant_bits ~width ts regions);
  let violations = List.rev !violations in
  { ok = violations = []; violations }

(* --- derived facts for the structural side ------------------------------ *)

let never_written ts (region : Memmap.region) =
  if List.exists (fun t -> t.degraded <> None) ts then []
  else
    let ivals =
      List.concat_map
        (fun t ->
          List.filter_map
            (fun (_, s) ->
              match Aval.bounds s.a_addr with
              | None -> None
              | Some (lo, hi) ->
                let lo = max lo region.Memmap.lo and hi = min hi region.hi in
                if lo > hi then None else Some (lo, hi))
            t.stores)
        ts
      |> List.sort compare
    in
    let rec gaps cursor = function
      | [] ->
        if cursor <= region.hi then [ (cursor, region.hi) ] else []
      | (lo, hi) :: rest ->
        let before = if cursor < lo then [ (cursor, lo - 1) ] else [] in
        before @ gaps (max cursor (hi + 1)) rest
    in
    gaps region.Memmap.lo ivals

let stores_in t (region : Memmap.region) =
  match t.degraded with
  | Some _ -> 0
  | None ->
    List.length
      (List.filter (fun (_, s) -> region_covers region s.a_addr) t.stores)

let unmapped_accesses t regions =
  match t.degraded with
  | Some msg -> [ Printf.sprintf "analysis degraded: %s" msg ]
  | None ->
    let out = ref [] in
    List.iter
      (fun (i, s) ->
        if not (covered regions s.a_addr) then
          out :=
            Format.asprintf "load at 0x%X from %a" (t.origin + i) Aval.pp
              s.a_addr
            :: !out)
      t.loads;
    List.iter
      (fun (i, s) ->
        if not (covered regions s.a_addr) then
          out :=
            Format.asprintf "store at 0x%X to %a" (t.origin + i) Aval.pp
              s.a_addr
            :: !out)
      t.stores;
    List.rev !out

let rdata_bit ts ~bit =
  if ts = [] || List.exists (fun t -> t.degraded <> None) ts then Logic4.X
  else
    (* the bus idles at 0, returns fetched words, and returns load data *)
    List.fold_left
      (fun acc t ->
        let acc =
          Array.to_list t.image
          |> List.mapi (fun i w -> (i, w))
          |> List.fold_left
               (fun acc (i, w) ->
                 if t.pre.(i) = None then acc
                 else bjoin acc (if (w lsr bit) land 1 = 1 then Logic4.L1 else Logic4.L0))
               acc
        in
        List.fold_left
          (fun acc (_, s) -> bjoin acc (Aval.bit s.a_value bit))
          acc t.loads)
      Logic4.L0 ts

let rdata_constant_bits ~width ts =
  List.filter_map
    (fun bit ->
      match rdata_bit ts ~bit with
      | Logic4.L0 -> Some (bit, false)
      | Logic4.L1 -> Some (bit, true)
      | _ -> None)
    (List.init width (fun i -> i))

let netlist_assume ~width ts nl =
  let assume = ref [] in
  List.iter
    (fun (bit, v) ->
      Array.iter
        (fun node -> assume := (node, Logic4.of_bool v) :: !assume)
        (Netlist.nodes_with_role nl (Netlist.Address_reg bit)))
    (constant_addr_bits ~width ts);
  List.iter
    (fun (bit, v) ->
      match Netlist.find nl (Printf.sprintf "bus_rdata[%d]" bit) with
      | Some node -> assume := (node, Logic4.of_bool v) :: !assume
      | None -> ())
    (rdata_constant_bits ~width ts);
  List.rev !assume

let assume_script ~width ts nl =
  let ops = ref [] in
  List.iter
    (fun (bit, v) ->
      Array.iter
        (fun node ->
          match Netlist.name nl node with
          | Some nm -> ops := Script.Tie_flop (nm, Logic4.of_bool v) :: !ops
          | None -> ())
        (Netlist.nodes_with_role nl (Netlist.Address_reg bit)))
    (constant_addr_bits ~width ts);
  List.iter
    (fun (bit, v) ->
      let nm = Printf.sprintf "bus_rdata[%d]" bit in
      if Netlist.find nl nm <> None then
        ops := Script.Tie_input (nm, Logic4.of_bool v) :: !ops)
    (rdata_constant_bits ~width ts);
  List.rev !ops

let software_facts ~label cfg nl ts =
  let width = cfg.Soc.xlen in
  let named = ts in
  let summaries = List.map snd named in
  {
    Olfu_lint.Ctx.sw_label = label;
    sw_width = width;
    sw_const_addr_bits = constant_addr_bits ~width summaries;
    sw_assume = netlist_assume ~width summaries nl;
    sw_dead_code =
      List.filter_map
        (fun (name, t) ->
          match dead_pcs t with [] -> None | pcs -> Some (name, pcs))
        named;
    sw_store_total =
      List.fold_left (fun acc t -> acc + store_sites t) 0 summaries;
    sw_ram_stores =
      List.exists (fun t -> stores_in t cfg.Soc.ram > 0) summaries;
    sw_unmapped =
      List.concat_map
        (fun (name, t) ->
          List.map
            (fun s -> name ^ ": " ^ s)
            (unmapped_accesses t [ cfg.Soc.rom; cfg.Soc.ram ]))
        named;
  }

(* ------------------------------------------------------------------ *)
(* Activation-condition facts for the safe-fault classifier           *)
(* ------------------------------------------------------------------ *)

type activation_facts = {
  af_label : string;
  af_width : int;
  af_addr_bits : (int * bool) list;
  af_rdata_bits : (int * bool) list;
  af_never_written : (int * int) list;
  af_degraded : string list;
}

let activation_facts ~label cfg named =
  let width = cfg.Soc.xlen in
  let ts = List.map snd named in
  {
    af_label = label;
    af_width = width;
    af_addr_bits = constant_addr_bits ~width ts;
    af_rdata_bits = rdata_constant_bits ~width ts;
    af_never_written = never_written ts cfg.Soc.ram;
    af_degraded =
      List.filter_map
        (fun (name, t) ->
          Option.map (fun msg -> name ^ ": " ^ msg) (degraded t))
        named;
  }

let facts_assume facts nl =
  let assume = ref [] in
  List.iter
    (fun (bit, v) ->
      Array.iter
        (fun node -> assume := (node, Logic4.of_bool v) :: !assume)
        (Netlist.nodes_with_role nl (Netlist.Address_reg bit)))
    facts.af_addr_bits;
  List.iter
    (fun (bit, v) ->
      match Netlist.find nl (Printf.sprintf "bus_rdata[%d]" bit) with
      | Some node -> assume := (node, Logic4.of_bool v) :: !assume
      | None -> ())
    facts.af_rdata_bits;
  List.rev !assume
