(** Value-set / interval abstract domain for machine words.

    Concretisation: [Bot] is empty, [Set vs] is exactly [vs], [Range
    (lo, hi)] is every word in the closed interval, [Top] is every word.
    All values are expected already masked to the word width by the
    caller. *)

type t = Bot | Set of int list  (** sorted, distinct, length <= {!cap} *)
       | Range of int * int  (** inclusive *)
       | Top

val cap : int
(** Maximum tracked set size (128) before collapsing to an interval. *)

val of_list : int list -> t
val exact : int -> t
val bounds : t -> (int * int) option
(** [None] for [Bot] and [Top]. *)

val contains : t -> int -> bool
val to_list : t -> int list option
(** The exact value list for [Bot]/[Set]; [None] otherwise. *)

val join : t -> t -> t
val equal : t -> t -> bool
val leq : t -> t -> bool

val widen : t -> t -> t
(** [widen old new]: like [join] but an interval that grows again after
    the set stage goes to [Top], bounding every ascending chain. *)

val map : (int -> int) -> t -> t
(** Exact image of a small set; [Top] for intervals (the image of an
    interval under a masked operation need not be an interval). *)

val map2 : (int -> int -> int) -> t -> t -> t
(** Cartesian image when the product stays small, else [Top]. *)

val remove : int -> t -> t
(** Sound under-approximating removal: drops [x] from sets and interval
    endpoints, leaves everything else unchanged. *)

val pp : Format.formatter -> t -> unit
