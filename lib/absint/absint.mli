open Olfu_logic
open Olfu_soc
open Olfu_sbst

(** Sound abstract interpretation of tcore programs (Sec. 3.3 from the
    software side): a worklist fixpoint over the instruction CFG with
    {!Aval} register states and a flow-insensitive abstract store,
    deriving which address bits the mission software can ever toggle,
    which registers and memory stay constant, and which code is dead.

    Soundness contract: every concrete {!Isa_sim} execution of the same
    image from the same entry stays inside the abstraction — each fetched
    pc satisfies {!pc_reachable}, each register value at a fetch lies in
    {!reg_at}, each store is admitted by {!may_write}/{!store_value}.
    When the abstraction cannot bound a behaviour (a store that may fall
    into the program image, an indirect jump with unbounded targets,
    control leaving the image), the result is {e degraded}: every query
    answers with its top, so all claims remain trivially sound. *)

type access = { a_addr : Aval.t; a_value : Aval.t }

type t

val analyze : ?xlen:int -> ?origin:int -> ?entry:int -> int array -> t
(** [analyze image] runs the fixpoint on encoded instruction words
    loaded at word address [origin] (default 0), entering at [entry]
    (default [origin]).  [xlen] defaults to 16.  Raises
    [Invalid_argument] on an empty image, an image that does not fit the
    address space, or an entry outside it. *)

val of_items : ?entry:int -> Soc.config -> Asm.item list -> t
(** Assemble at the config's ROM base and analyze at its [xlen]. *)

val of_program : Soc.config -> Programs.t -> t

val degraded : t -> string option
val passes : t -> int
(** Outer passes over the abstract store until it converged. *)

val image_length : t -> int
val origin : t -> int

(** {1 Per-program queries} *)

val pc_reachable : t -> int -> bool
val dead_pcs : t -> int list
(** Word addresses proven unreachable (empty when degraded: no claim). *)

val reg_at : t -> pc:int -> int -> Aval.t
(** Abstract value of a register just before the instruction at [pc]
    executes (bottom if unreachable, top if degraded). *)

val reg_join : t -> int -> Aval.t
(** Join of a register over every reachable program point. *)

val may_write : t -> addr:int -> bool
val store_value : t -> addr:int -> Aval.t
(** Join of everything that may be stored to [addr] (bottom if nothing). *)

val store_sites : t -> int

val may_read : t -> addr:int -> bool
(** Some load may read [addr] (trivially true when degraded). *)

val load_result : t -> addr:int -> Aval.t
(** Join of everything a load from [addr] may return (bottom if no load
    can read it, top if degraded). *)

val stores_in : t -> Olfu_manip.Memmap.region -> int
(** Store sites whose address is provably inside the region. *)

val unmapped_accesses : t -> Olfu_manip.Memmap.region list -> string list

(** {1 Address-bus queries (over one or more programs)} *)

val addr_bit : t list -> bit:int -> Logic4.t
(** Toggle-join of address bit [bit] over every access (fetch, load,
    store) of every program: [L0]/[L1] if provably constant, else [X]. *)

val constant_addr_bits : width:int -> t list -> (int * bool) list
(** Bits of [0..width-1] with a proven constant value, ascending — the
    program-side counterpart of {!Olfu_manip.Memmap.constant_bits}. *)

val touched_regions :
  t list -> Olfu_manip.Memmap.region list -> Olfu_manip.Memmap.region list
(** Regions some access may fall into (all of them when degraded). *)

val region_constant_bits :
  width:int -> t list -> Olfu_manip.Memmap.region list -> (int * bool) list
(** [Memmap.constant_bits] restricted to the touched regions: the Sec. 4
    memory-map argument instantiated with what the software actually
    uses.  Empty if no region is touched. *)

type check = { ok : bool; violations : string list }

val cross_check :
  width:int -> t list -> Olfu_manip.Memmap.region list -> check
(** Consistency of the program-side and map-side analyses: no access may
    escape the mapped regions, and every map-constant bit over the
    touched regions must be program-constant with the same value. *)

val never_written : t list -> Olfu_manip.Memmap.region -> (int * int) list
(** Maximal sub-intervals of the region no analysed program can store
    to, ascending (empty when degraded). *)

(** {1 Data-bus queries} *)

val rdata_bit : t list -> bit:int -> Logic4.t
(** Toggle-join over everything the bus can return: the idle 0, fetched
    instruction words, and load results.  [X] on an empty list — with no
    analysed program there is no basis for claiming any bit constant. *)

val rdata_constant_bits : width:int -> t list -> (int * bool) list

(** {1 Hand-off to the structural side} *)

val netlist_assume :
  width:int -> t list -> Olfu_netlist.Netlist.t -> (int * Logic4.t) list
(** Software-proven constants as [Ternary.run ?assume] facts: every
    [Address_reg bit] flop for a constant address bit, every
    [bus_rdata[bit]] input for a constant data bit. *)

val assume_script :
  width:int -> t list -> Olfu_netlist.Netlist.t -> Olfu_manip.Script.t
(** The same facts as a reviewable {!Olfu_manip.Script}: [Tie_flop] per
    named address-register flop, [Tie_input] per constant rdata bit. *)

val software_facts :
  label:string ->
  Soc.config ->
  Olfu_netlist.Netlist.t ->
  (string * t) list ->
  Olfu_lint.Ctx.software
(** Package everything the SW-* lint rules consume, for
    [Lint.run ?software]. *)

(** Activation-condition facts for the safe-fault classifier
    ({!Olfu_safety}): the software-proven constants that contradict the
    activation conditions of stuck-at faults, as netlist-independent
    data.  Unlike {!netlist_assume} the bit facts are kept symbolic and
    resolved per netlist with {!facts_assume}, so the same facts apply to
    the generated netlist and to every manipulated (tied) derivative. *)
type activation_facts = {
  af_label : string;  (** provenance, e.g. ["tcore32-suite"] *)
  af_width : int;  (** address/data width the bit indices refer to *)
  af_addr_bits : (int * bool) list;
      (** address bits constant over every access of every program *)
  af_rdata_bits : (int * bool) list;
      (** bus read-data bits constant over everything the bus returns *)
  af_never_written : (int * int) list;
      (** RAM sub-intervals no analysed program can store to *)
  af_degraded : string list;
      (** programs whose analysis degraded (their facts are still sound
          — a degraded analysis claims nothing) *)
}

val activation_facts :
  label:string -> Soc.config -> (string * t) list -> activation_facts

val facts_assume :
  activation_facts -> Olfu_netlist.Netlist.t -> (int * Logic4.t) list
(** Resolve the bit facts against a concrete netlist, as
    [Ternary.run ?assume] assumptions: every [Address_reg bit] flop for a
    constant address bit, every [bus_rdata[bit]] input for a constant
    data bit.  Nodes absent from the netlist (already tied away by a
    manipulation) are skipped. *)
