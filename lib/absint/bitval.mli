open Olfu_logic

(** Bitwise three-valued abstract domain: every bit of a [width]-bit
    machine word is known-0, known-1 or unknown ([X]).  The concretisation
    of a value is the set of words agreeing with it on every known bit. *)

type t

val make : int -> known:int -> value:int -> t
(** [make w ~known ~value]: bits of [known] are decided, their values
    taken from [value].  Both masked to [w] bits; [value] is clipped to
    [known]. *)

val exact : int -> int -> t
val top : int -> t
val width : t -> int
val is_exact : t -> bool
val to_exact : t -> int option
val is_top : t -> bool
val equal : t -> t -> bool

val bit : t -> int -> Logic4.t
(** [L0]/[L1] for a known bit, [X] for an unknown one.  Bits at or above
    [width] read [L0]. *)

val contains : t -> int -> bool
(** Is the concrete word (masked to [width]) inside the concretisation? *)

val min_val : t -> int
(** Smallest word in the concretisation (unknown bits at 0). *)

val max_val : t -> int
(** Largest word in the concretisation (unknown bits at 1). *)

val join : t -> t -> t
(** Per-bit least upper bound: disagreeing or unknown bits go to [X]. *)

val meet : t -> t -> t option
(** Per-bit intersection; [None] when two known bits conflict (empty). *)

val of_values : int -> int list -> t
(** Join of exact values.  Raises [Invalid_argument] on an empty list. *)

(** {1 Transfer functions} — all sound over the masked [width]-bit
    two's-complement semantics of {!Olfu_sbst.Isa_sim}. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val add : ?cin:Logic4.t -> t -> t -> t
(** Ripple-carry addition over {!Logic4} bits; a sum bit is known exactly
    while the carry chain into it stays binary. *)

val sub : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val mul : t -> t -> t
(** Exact when both operands are; otherwise only the product's low
    known-zero bits (from operand trailing zeros) are retained. *)

val pp : Format.formatter -> t -> unit
(** MSB-first characters [0], [1], [x]. *)
