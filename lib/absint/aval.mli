open Olfu_logic

(** Abstract machine word: reduced product of {!Bitval} (per-bit 0/1/X)
    and {!Vset} (value set / interval).  A concrete word is in the
    concretisation iff both components admit it.  All transfer functions
    mirror {!Olfu_sbst.Isa_sim}'s masked two's-complement semantics
    bit-exactly on singleton inputs. *)

type t

val width : t -> int
val bot : int -> t
val is_bot : t -> bool
val top : int -> t
val exact : int -> int -> t
val of_values : int -> int list -> t

val reduce : t -> t
(** Exchange information between components: filter sets through the bit
    view (rebuilding exact bits for small sets) and clip intervals to the
    bit view's hull.  Sound and idempotent. *)

val join : t -> t -> t
val widen : t -> t -> t
(** Like [join] but with {!Vset.widen} on the set component — use at
    program-point merges to guarantee fixpoint termination. *)

val equal : t -> t -> bool
val contains : t -> int -> bool
val to_exact : t -> int option
val values : t -> int list option
(** Exact finite enumeration if available ([Some []] for bottom). *)

val bit : t -> int -> Logic4.t
val bounds : t -> (int * int) option

val add : t -> t -> t
val sub : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val mul : t -> t -> t
val mulh : t -> t -> t
val div : t -> t -> t
val rem_ : t -> t -> t

val refine_eq : t -> int -> t option
(** Branch refinement on "= x": [None] when the path is infeasible. *)

val refine_ne : t -> int -> t option
(** Branch refinement on "<> x" (sound, may keep [x] for intervals). *)

val pp : Format.formatter -> t -> unit
