(* Value-set / interval domain for word values (addresses above all).
   Small sets are tracked exactly; a set that outgrows [cap] collapses to
   its interval hull, and an interval that keeps growing under [widen]
   jumps to Top, so every ascending chain at a program point has length
   at most [cap] + 2. *)

type t = Bot | Set of int list | Range of int * int | Top

let cap = 128

let of_sorted = function
  | [] -> Bot
  | lo :: _ as vs ->
    let n = List.length vs in
    if n <= cap then Set vs else Range (lo, List.nth vs (n - 1))

let of_list vs = of_sorted (List.sort_uniq compare vs)
let exact x = Set [ x ]

let bounds = function
  | Bot | Top -> None
  | Set vs -> Some (List.hd vs, List.nth vs (List.length vs - 1))
  | Range (lo, hi) -> Some (lo, hi)

let contains t x =
  match t with
  | Bot -> false
  | Top -> true
  | Set vs -> List.mem x vs
  | Range (lo, hi) -> lo <= x && x <= hi

let to_list = function Bot -> Some [] | Set vs -> Some vs | _ -> None

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Set xs, Set ys -> of_sorted (List.sort_uniq compare (xs @ ys))
  | _ ->
    let lo1, hi1 = Option.get (bounds a) and lo2, hi2 = Option.get (bounds b) in
    Range (min lo1 lo2, max hi1 hi2)

let equal (a : t) b = a = b
let leq a b = equal (join a b) b

let widen old n =
  let j = join old n in
  if equal j old then old
  else
    match (old, j) with
    (* an interval still growing after the Set stage widens straight out *)
    | Range _, Range _ -> Top
    | _ -> j

let map f = function
  | Bot -> Bot
  | Set vs -> of_list (List.map f vs)
  | Range _ | Top -> Top

let map2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Set xs, Set ys when List.length xs * List.length ys <= 4 * cap ->
    of_list (List.concat_map (fun x -> List.map (f x) ys) xs)
  | _ -> Top

let remove x = function
  | Set vs -> of_sorted (List.filter (fun v -> v <> x) vs)
  | Range (lo, hi) when x = lo -> if lo = hi then Bot else Range (lo + 1, hi)
  | Range (lo, hi) when x = hi -> Range (lo, hi - 1)
  | t -> t

let pp ppf = function
  | Bot -> Format.fprintf ppf "bot"
  | Top -> Format.fprintf ppf "top"
  | Set vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf v -> Format.fprintf ppf "0x%X" v))
      vs
  | Range (lo, hi) -> Format.fprintf ppf "[0x%X,0x%X]" lo hi
