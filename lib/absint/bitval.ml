open Olfu_logic

(* Each of the [width] bits of a machine word is known-0, known-1 or
   unknown.  Two masks over the native int: [known] flags the decided
   bits, [value] carries their values and is kept a subset of [known].
   This is the per-bit three-valued domain of the netlist side
   (Logic4 restricted to {0,1,X}) transplanted onto program words. *)

type t = { width : int; known : int; value : int }

let full w = (1 lsl w) - 1

let make w ~known ~value =
  let m = full w in
  let known = known land m in
  { width = w; known; value = value land known }

let exact w x = make w ~known:(full w) ~value:x
let top w = make w ~known:0 ~value:0
let width t = t.width
let is_exact t = t.known = full t.width
let to_exact t = if is_exact t then Some t.value else None
let is_top t = t.known = 0

let equal a b = a.width = b.width && a.known = b.known && a.value = b.value

let bit t i =
  if i < 0 || i >= t.width then Logic4.L0
  else if t.known land (1 lsl i) = 0 then Logic4.X
  else if t.value land (1 lsl i) <> 0 then Logic4.L1
  else Logic4.L0

let contains t x =
  let x = x land full t.width in
  x land t.known = t.value

let min_val t = t.value
let max_val t = t.value lor (full t.width land lnot t.known)

let join a b =
  let agree = lnot (a.value lxor b.value) in
  let known = a.known land b.known land agree in
  make a.width ~known ~value:(a.value land known)

let meet a b =
  if a.known land b.known land (a.value lxor b.value) <> 0 then None
  else Some (make a.width ~known:(a.known lor b.known) ~value:(a.value lor b.value))

let of_values w = function
  | [] -> invalid_arg "Bitval.of_values: empty"
  | v :: vs -> List.fold_left (fun acc v -> join acc (exact w v)) (exact w v) vs

let lognot a = make a.width ~known:a.known ~value:(lnot a.value)

let logand a b =
  let ones = a.value land b.value in
  let zeros = (a.known land lnot a.value) lor (b.known land lnot b.value) in
  make a.width ~known:(ones lor zeros) ~value:ones

let logor a b =
  let ones = a.value lor b.value in
  let zeros = a.known land lnot a.value land (b.known land lnot b.value) in
  make a.width ~known:(ones lor zeros) ~value:ones

let logxor a b =
  let known = a.known land b.known in
  make a.width ~known ~value:(a.value lxor b.value)

(* Ripple-carry over Logic4 bits: the sum bit is binary only while the
   incoming carry chain stays binary, which is exactly the adder's
   information flow in the gate-level datapath. *)
let add ?(cin = Logic4.L0) a b =
  let w = a.width in
  let known = ref 0 and value = ref 0 and carry = ref cin in
  for i = 0 to w - 1 do
    let ai = bit a i and bi = bit b i in
    (match Logic4.xor2 (Logic4.xor2 ai bi) !carry with
    | Logic4.L0 -> known := !known lor (1 lsl i)
    | Logic4.L1 ->
      known := !known lor (1 lsl i);
      value := !value lor (1 lsl i)
    | _ -> ());
    carry :=
      Logic4.or2 (Logic4.and2 ai bi) (Logic4.and2 !carry (Logic4.or2 ai bi))
  done;
  make w ~known:!known ~value:!value

let sub a b = add ~cin:Logic4.L1 a (lognot b)

let shift_left a k =
  if k <= 0 then a
  else if k >= a.width then exact a.width 0
  else make a.width ~known:((a.known lsl k) lor full k) ~value:(a.value lsl k)

let shift_right a k =
  if k <= 0 then a
  else if k >= a.width then exact a.width 0
  else
    let high = full k lsl (a.width - k) in
    make a.width ~known:((a.known lsr k) lor high) ~value:(a.value lsr k)

let trailing_zeros t =
  let rec go i =
    if i < t.width && t.known land (1 lsl i) <> 0 && t.value land (1 lsl i) = 0
    then go (i + 1)
    else i
  in
  go 0

let mul a b =
  match (to_exact a, to_exact b) with
  | Some x, Some y -> exact a.width (x * y)
  | _ ->
    if to_exact a = Some 0 || to_exact b = Some 0 then exact a.width 0
    else
      let z = min a.width (trailing_zeros a + trailing_zeros b) in
      make a.width ~known:(full z) ~value:0

let pp ppf t =
  for i = t.width - 1 downto 0 do
    Format.pp_print_char ppf (Logic4.to_char (bit t i))
  done
