open Olfu_sbst

(* Reduced product of the bitwise three-valued domain and the
   value-set/interval domain.  [reduce] pushes information both ways:
   sets are filtered through the bit view and small sets rebuild an
   exact bit view; intervals are clipped to the bit view's hull.
   Bottom is represented by [vals = Vset.Bot]. *)

type t = { bits : Bitval.t; vals : Vset.t }

let width t = Bitval.width t.bits
let msk w = (1 lsl w) - 1

let bot w = { bits = Bitval.top w; vals = Vset.Bot }
let is_bot t = t.vals = Vset.Bot
let top w = { bits = Bitval.top w; vals = Vset.Top }
let exact w x =
  let x = x land msk w in
  { bits = Bitval.exact w x; vals = Vset.exact x }

let reduce t =
  let w = width t in
  match t.vals with
  | Vset.Bot -> bot w
  | Vset.Set vs -> (
    match List.filter (fun v -> Bitval.contains t.bits v) vs with
    | [] -> bot w
    | vs ->
      let from_set = Bitval.of_values w vs in
      let bits =
        match Bitval.meet t.bits from_set with
        | Some b -> b
        | None -> from_set (* unreachable: every v satisfies t.bits *)
      in
      { bits; vals = Vset.of_list vs })
  | Vset.Range (lo, hi) ->
    let lo = max lo (Bitval.min_val t.bits)
    and hi = min hi (Bitval.max_val t.bits) in
    if lo > hi then bot w
    else if lo = hi then if Bitval.contains t.bits lo then exact w lo else bot w
    else { bits = t.bits; vals = Vset.Range (lo, hi) }
  | Vset.Top -> (
    match Bitval.to_exact t.bits with Some x -> exact w x | None -> t)

let of_values w vs =
  reduce { bits = Bitval.of_values w vs; vals = Vset.of_list vs }

let join a b =
  if is_bot a then b
  else if is_bot b then a
  else { bits = Bitval.join a.bits b.bits; vals = Vset.join a.vals b.vals }

let widen a b =
  if is_bot a then b
  else if is_bot b then a
  else { bits = Bitval.join a.bits b.bits; vals = Vset.widen a.vals b.vals }

let equal a b = Bitval.equal a.bits b.bits && Vset.equal a.vals b.vals

let contains t x =
  let x = x land msk (width t) in
  (not (is_bot t)) && Bitval.contains t.bits x && Vset.contains t.vals x

let to_exact t =
  if is_bot t then None
  else
    match Vset.to_list t.vals with
    | Some [ v ] -> Some v
    | _ -> Bitval.to_exact t.bits

let values t = if is_bot t then Some [] else Vset.to_list t.vals

let bit t i = Bitval.bit t.bits i

let bounds t =
  if is_bot t then None
  else
    match Vset.bounds t.vals with
    | Some (lo, hi) ->
      Some (max lo (Bitval.min_val t.bits), min hi (Bitval.max_val t.bits))
    | None -> Some (Bitval.min_val t.bits, Bitval.max_val t.bits)

let lift1 fexact fbits a =
  if is_bot a then a
  else reduce { bits = fbits a.bits; vals = Vset.map fexact a.vals }

let lift2 fexact fbits a b =
  if is_bot a || is_bot b then bot (width a)
  else reduce { bits = fbits a.bits b.bits; vals = Vset.map2 fexact a.vals b.vals }

(* Every [fexact] below replicates Isa_sim's concrete step on masked
   operands, so Set elements stay bit-exact. *)
let add a b =
  let m = msk (width a) in
  lift2 (fun x y -> (x + y) land m) (fun x y -> Bitval.add x y) a b

let sub a b =
  let m = msk (width a) in
  lift2 (fun x y -> (x - y) land m) Bitval.sub a b

let logand a b = lift2 (fun x y -> x land y) Bitval.logand a b
let logor a b = lift2 (fun x y -> x lor y) Bitval.logor a b
let logxor a b = lift2 (fun x y -> x lxor y) Bitval.logxor a b

let shift_left a k =
  let m = msk (width a) in
  lift1 (fun x -> (x lsl k) land m) (fun b -> Bitval.shift_left b k) a

let shift_right a k = lift1 (fun x -> x lsr k) (fun b -> Bitval.shift_right b k) a

let mul a b =
  let m = msk (width a) in
  lift2 (fun x y -> (x * y) land m) Bitval.mul a b

let mulh a b =
  let w = width a in
  let m = msk w in
  lift2
    (fun x y ->
      let p = Int64.mul (Int64.of_int x) (Int64.of_int y) in
      Int64.to_int (Int64.shift_right_logical p w) land m)
    (fun _ _ -> Bitval.top w)
    a b

let div a b =
  let w = width a in
  lift2
    (fun x y -> fst (Isa_sim.divmod ~w x y) land msk w)
    (fun _ _ -> Bitval.top w)
    a b

let rem_ a b =
  let w = width a in
  lift2 (fun x y -> snd (Isa_sim.divmod ~w x y)) (fun _ _ -> Bitval.top w) a b

let refine_eq t x = if contains t x then Some (exact (width t) x) else None

let refine_ne t x =
  if is_bot t then None
  else if Bitval.to_exact t.bits = Some x then None
  else
    let r = reduce { t with vals = Vset.remove x t.vals } in
    if is_bot r then None else Some r

let pp ppf t =
  if is_bot t then Format.fprintf ppf "bot"
  else Format.fprintf ppf "%a %a" Bitval.pp t.bits Vset.pp t.vals
