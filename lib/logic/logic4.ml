type t = L0 | L1 | X | Z

let equal a b =
  match a, b with
  | L0, L0 | L1, L1 | X, X | Z, Z -> true
  | (L0 | L1 | X | Z), _ -> false

let rank = function L0 -> 0 | L1 -> 1 | X -> 2 | Z -> 3
let compare a b = Int.compare (rank a) (rank b)

let of_bool b = if b then L1 else L0

let to_bool = function
  | L0 -> Some false
  | L1 -> Some true
  | X | Z -> None

let is_binary = function L0 | L1 -> true | X | Z -> false

let of_char = function
  | '0' -> Some L0
  | '1' -> Some L1
  | 'x' | 'X' -> Some X
  | 'z' | 'Z' -> Some Z
  | _ -> None

let to_char = function L0 -> '0' | L1 -> '1' | X -> 'x' | Z -> 'z'

(* Gate inputs read Z as X. *)
let strip = function Z -> X | v -> v

let not_ v = match strip v with L0 -> L1 | L1 -> L0 | _ -> X

let and2 a b =
  match strip a, strip b with
  | L0, _ | _, L0 -> L0
  | L1, L1 -> L1
  | _ -> X

let or2 a b =
  match strip a, strip b with
  | L1, _ | _, L1 -> L1
  | L0, L0 -> L0
  | _ -> X

let xor2 a b =
  match strip a, strip b with
  | L0, v | v, L0 -> (match v with L0 | L1 -> v | _ -> X)
  | L1, L1 -> L0
  | L1, v | v, L1 -> (match v with L0 -> L1 | L1 -> L0 | _ -> X)
  | _ -> X

let nand2 a b = not_ (and2 a b)
let nor2 a b = not_ (or2 a b)
let xnor2 a b = not_ (xor2 a b)

let and_list = List.fold_left and2 L1
let or_list = List.fold_left or2 L0
let xor_list = List.fold_left xor2 L0

let mux ~sel ~a ~b =
  match strip sel with
  | L0 -> strip a
  | L1 -> strip b
  | _ -> if equal (strip a) (strip b) && is_binary (strip a) then strip a else X

let merge a b =
  match strip a, strip b with
  | X, v | v, X -> v
  | v, w -> if equal v w then v else X

let pp ppf v = Format.pp_print_char ppf (to_char v)
