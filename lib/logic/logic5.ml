type t = Zero | One | D | Dbar | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | D, D | Dbar, Dbar | X, X -> true
  | (Zero | One | D | Dbar | X), _ -> false

let good = function
  | Zero -> Logic4.L0
  | One -> Logic4.L1
  | D -> Logic4.L1
  | Dbar -> Logic4.L0
  | X -> Logic4.X

let faulty = function
  | Zero -> Logic4.L0
  | One -> Logic4.L1
  | D -> Logic4.L0
  | Dbar -> Logic4.L1
  | X -> Logic4.X

let of_pair ~good:g ~faulty:f =
  match (g : Logic4.t), (f : Logic4.t) with
  | L0, L0 -> Zero
  | L1, L1 -> One
  | L1, L0 -> D
  | L0, L1 -> Dbar
  | (L0 | L1 | X | Z), _ -> X

let is_error = function D | Dbar -> true | Zero | One | X -> false

(* Evaluate componentwise through the 4-valued algebra: this is exactly the
   D-calculus truth tables and keeps the two algebras consistent. *)
let lift1 op v = of_pair ~good:(op (good v)) ~faulty:(op (faulty v))

let lift2 op a b =
  of_pair ~good:(op (good a) (good b)) ~faulty:(op (faulty a) (faulty b))

let not_ = lift1 Logic4.not_
let and2 = lift2 Logic4.and2
let or2 = lift2 Logic4.or2
let xor2 = lift2 Logic4.xor2
let nand2 = lift2 Logic4.nand2
let nor2 = lift2 Logic4.nor2
let xnor2 = lift2 Logic4.xnor2

let mux ~sel ~a ~b =
  of_pair
    ~good:(Logic4.mux ~sel:(good sel) ~a:(good a) ~b:(good b))
    ~faulty:(Logic4.mux ~sel:(faulty sel) ~a:(faulty a) ~b:(faulty b))

let to_string = function
  | Zero -> "0"
  | One -> "1"
  | D -> "D"
  | Dbar -> "D'"
  | X -> "x"

let pp ppf v = Format.pp_print_string ppf (to_string v)
