(** 64-way bit-parallel four-valued words for pattern-parallel simulation.

    Each of the 64 lanes carries one pattern.  A lane encodes a value on two
    rails [(hi, lo)]:
    {ul
    {- [1] = (1, 0)}
    {- [0] = (0, 1)}
    {- [X] = (1, 1)}
    {- the (0, 0) code is unused and never produced.}}

    Gate evaluation is two or three 64-bit word operations, so simulating a
    gate processes 64 patterns at once. *)

type t = private { hi : int64; lo : int64 }

val width : int
(** Number of lanes, 64. *)

val zero : t
val one : t
val unknown : t

val make : hi:int64 -> lo:int64 -> t
(** Lanes where both rails are 0 are coerced to X. *)

val const : Logic4.t -> t
(** All 64 lanes set to the given scalar. *)

val get : t -> int -> Logic4.t
val set : t -> int -> Logic4.t -> t

val of_lanes : Logic4.t array -> t
(** [of_lanes a] packs up to 64 scalars; missing lanes are X. *)

val to_lanes : ?n:int -> t -> Logic4.t array

val equal : t -> t -> bool

val not_ : t -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val xor2 : t -> t -> t
val nand2 : t -> t -> t
val nor2 : t -> t -> t
val xnor2 : t -> t -> t
val mux : sel:t -> a:t -> b:t -> t

val force_mask : t -> m0:int64 -> m1:int64 -> t
(** Force lanes in [m0] to 0 and lanes in [m1] to 1 (per-lane stuck-at
    injection for fault-parallel simulation).  Overlapping masks leave the
    [m1] forcing winning on [hi] and [m0] on [lo] — callers keep them
    disjoint. *)

val select_mask : t -> t -> int64 -> t
(** [select_mask a b m]: lanes from [b] where [m] is set, else from [a]. *)

val diff_mask : t -> t -> int64
(** [diff_mask a b] has bit [i] set when lane [i] of [a] and [b] hold
    distinct {e binary} values (X never differs from anything) — the
    detection test of a pattern-parallel fault simulator. *)

val binary_mask : t -> int64
(** Lanes holding 0 or 1 (not X). *)

val pp : Format.formatter -> t -> unit
