type t = { hi : int64; lo : int64 }

let width = 64

let ( &. ) = Int64.logand
let ( |. ) = Int64.logor
let ( ^. ) = Int64.logxor
let lnot64 = Int64.lognot

let zero = { hi = 0L; lo = -1L }
let one = { hi = -1L; lo = 0L }
let unknown = { hi = -1L; lo = -1L }

(* Invariant: no lane is (0,0).  Coerce such lanes to X. *)
let norm v =
  let dead = lnot64 (v.hi |. v.lo) in
  if dead = 0L then v else { hi = v.hi |. dead; lo = v.lo |. dead }

let make ~hi ~lo = norm { hi; lo }

let const = function
  | Logic4.L0 -> zero
  | Logic4.L1 -> one
  | Logic4.X | Logic4.Z -> unknown

let bit w i = Int64.logand (Int64.shift_right_logical w i) 1L <> 0L

let get v i =
  match bit v.hi i, bit v.lo i with
  | true, false -> Logic4.L1
  | false, true -> Logic4.L0
  | _ -> Logic4.X

let set v i x =
  let m = Int64.shift_left 1L i in
  let clear w = w &. lnot64 m in
  match (x : Logic4.t) with
  | L0 -> { hi = clear v.hi; lo = v.lo |. m }
  | L1 -> { hi = v.hi |. m; lo = clear v.lo }
  | X | Z -> { hi = v.hi |. m; lo = v.lo |. m }

let of_lanes a =
  let v = ref unknown in
  Array.iteri (fun i x -> if i < width then v := set !v i x) a;
  !v

let to_lanes ?(n = width) v = Array.init n (get v)

let equal a b = a.hi = b.hi && a.lo = b.lo

let not_ v = { hi = v.lo; lo = v.hi }
let and2 a b = { hi = a.hi &. b.hi; lo = a.lo |. b.lo }
let or2 a b = { hi = a.hi |. b.hi; lo = a.lo &. b.lo }
let nand2 a b = not_ (and2 a b)
let nor2 a b = not_ (or2 a b)

let xor2 a b =
  (* Result is binary only where both operands are binary. *)
  let ax = a.hi &. a.lo and bx = b.hi &. b.lo in
  let x = ax |. bx in
  let v = (a.hi &. lnot64 a.lo) ^. (b.hi &. lnot64 b.lo) in
  { hi = v |. x; lo = lnot64 v |. x }

let xnor2 a b = not_ (xor2 a b)

let mux ~sel ~a ~b =
  (* sel=0 -> a; sel=1 -> b; sel=X -> a if lanes agree (binary), else X. *)
  let pick0 = sel.lo &. lnot64 sel.hi and pick1 = sel.hi &. lnot64 sel.lo in
  let selx = sel.hi &. sel.lo in
  let agree1 = a.hi &. b.hi &. lnot64 a.lo &. lnot64 b.lo in
  let agree0 = a.lo &. b.lo &. lnot64 a.hi &. lnot64 b.hi in
  let hi =
    (pick0 &. a.hi) |. (pick1 &. b.hi)
    |. (selx &. (agree1 |. lnot64 agree0))
  in
  let lo =
    (pick0 &. a.lo) |. (pick1 &. b.lo)
    |. (selx &. (agree0 |. lnot64 agree1))
  in
  norm { hi; lo }

let force_mask v ~m0 ~m1 =
  { hi = (v.hi &. lnot64 m0) |. m1; lo = (v.lo &. lnot64 m1) |. m0 }

let select_mask a b m =
  { hi = (a.hi &. lnot64 m) |. (b.hi &. m);
    lo = (a.lo &. lnot64 m) |. (b.lo &. m) }

let binary_mask v = lnot64 (v.hi &. v.lo)

let diff_mask a b =
  binary_mask a &. binary_mask b &. ((a.hi ^. b.hi) |. (a.lo ^. b.lo))

let pp ppf v =
  for i = width - 1 downto 0 do
    Format.pp_print_char ppf (Logic4.to_char (get v i))
  done
