(** Four-valued logic [{0, 1, X, Z}] used by the event-driven simulator and
    the ternary implication engine.

    [X] is the unknown value; [Z] is high impedance (a floating net).  All
    gate evaluations treat [Z] at a gate input as [X], which is the standard
    pessimistic reading used by structural-analysis tools. *)

type t = L0 | L1 | X | Z

val equal : t -> t -> bool
val compare : t -> t -> int

val of_bool : bool -> t

val to_bool : t -> bool option
(** [to_bool v] is [Some b] for the binary values, [None] for [X]/[Z]. *)

val is_binary : t -> bool

val of_char : char -> t option
(** Accepts ['0'], ['1'], ['x'], ['X'], ['z'], ['Z']. *)

val to_char : t -> char

(** {1 Gate evaluation} *)

val not_ : t -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val xor2 : t -> t -> t
val nand2 : t -> t -> t
val nor2 : t -> t -> t
val xnor2 : t -> t -> t

val and_list : t list -> t
val or_list : t list -> t
val xor_list : t list -> t

val mux : sel:t -> a:t -> b:t -> t
(** [mux ~sel ~a ~b] is [a] when [sel = 0], [b] when [sel = 1].  When [sel]
    is unknown the result is [a] if [a = b] (binary), else [X]. *)

(** {1 Lattice structure}

    Information ordering: [X] below both binary values.  Used for monotone
    fixed points in the implication engine. *)

val merge : t -> t -> t
(** Least upper bound where possible: [merge X v = v]; conflicting binary
    values merge to [X] (used when joining values across clock cycles). *)

val pp : Format.formatter -> t -> unit
