(** Five-valued D-calculus (Roth) used by the PODEM ATPG.

    A value is a pair (good-circuit value, faulty-circuit value):
    {ul
    {- [Zero] = 0/0, [One] = 1/1 — fault-free agreement;}
    {- [D] = 1/0 — good circuit sees 1, faulty circuit sees 0;}
    {- [Dbar] = 0/1;}
    {- [X] — unassigned.}} *)

type t = Zero | One | D | Dbar | X

val equal : t -> t -> bool

val of_pair : good:Logic4.t -> faulty:Logic4.t -> t
(** [of_pair] is [X] when either component is unknown. *)

val good : t -> Logic4.t
val faulty : t -> Logic4.t

val is_error : t -> bool
(** [D] or [Dbar]: the fault effect is visible on this line. *)

val not_ : t -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val xor2 : t -> t -> t
val nand2 : t -> t -> t
val nor2 : t -> t -> t
val xnor2 : t -> t -> t
val mux : sel:t -> a:t -> b:t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
