open Olfu_logic
open Olfu_netlist

(** Declarative, printable manipulation scripts.

    The paper's flow is "search for sources of untestability → circuit
    manipulation → structural screening"; a script is the middle step as a
    reviewable artifact, addressing cells by name so it survives netlist
    regeneration. *)

type op =
  | Tie_input of string * Logic4.t
  | Tie_net of string * Logic4.t
  | Tie_pin of { node : string; pin : int; value : Logic4.t }
  | Tie_flop of string * Logic4.t  (** ties both D and the output *)
  | Float_output of string

type t = op list

val apply : Netlist.t -> t -> Netlist.t
(** Raises [Invalid_argument] on unknown names or role mismatches. *)

val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit
