open Olfu_netlist

(** Deprecated compatibility shim over the {!Olfu_lint} static-analysis
    framework.

    New code should call {!Olfu_lint.Lint.run} directly: it exposes the
    full rule registry (this module's ten historical checks plus the
    shift-path, reset-domain, X-propagation, mission-constant, debug
    tie-off and structural passes), configuration (waivers, baselines,
    severity overrides) and the text/JSON/summary renderers.  [run]
    below returns {e all} live findings of the new engine, mapped onto
    the historical record type. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** stable identifier, e.g. "SCAN-001" *)
  message : string;
  node : int option;
}

val run : Netlist.t -> finding list
(** Equivalent to {!Olfu_lint.Lint.findings} with the default
    configuration.  The historical codes (SCAN-001..004, RST-001..002,
    NET-001..002, OBS-001, TEST-001) keep their old severities and
    message shapes; see the README rule catalogue for the full set. *)

val errors : finding list -> finding list
val pp_finding : Netlist.t -> Format.formatter -> finding -> unit
val pp_report : Netlist.t -> Format.formatter -> finding list -> unit
