open Olfu_netlist

(** Design-for-testability lint: the checks a test engineer runs before
    trusting a netlist in a flow like this paper's. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** stable identifier, e.g. "SCAN-001" *)
  message : string;
  node : int option;
}

val run : Netlist.t -> finding list
(** Checks, each with a stable code:
    {ul
    {- SCAN-001 (warning): flip-flop not reachable by any scan chain;}
    {- SCAN-002 (error): a scan-in port that traces to no scan cell;}
    {- SCAN-003 (warning): a scan chain without a scan-out port;}
    {- SCAN-004 (warning): scan cells driven by more than one scan-enable
       net;}
    {- RST-001 (warning): flip-flops without reset;}
    {- RST-002 (info): no input carries the reset role;}
    {- NET-001 (warning): floating ([Tiex]) net;}
    {- NET-002 (info): net constant in mission steady state (outside tie
       cells);}
    {- OBS-001 (warning): logic with no structural path to any output
       (dead cone);}
    {- TEST-001 (info): the hardest-to-test nets by SCOAP score.}} *)

val errors : finding list -> finding list
val pp_finding : Netlist.t -> Format.formatter -> finding -> unit
val pp_report : Netlist.t -> Format.formatter -> finding list -> unit
