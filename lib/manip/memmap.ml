type region = { name : string; lo : int; hi : int }

let region ?(name = "region") ~lo ~hi () =
  if lo < 0 || hi < lo then invalid_arg "Memmap.region: need 0 <= lo <= hi";
  { name; lo; hi }

(* Addresses with bit [b] = 1 form stripes [k*p + h, k*p + p - 1] with
   p = 2^(b+1), h = 2^b.  Intersect the first relevant stripe with the
   region. *)
let region_bit_can_be r ~bit ~value =
  let h = 1 lsl bit in
  let p = h lsl 1 in
  let base = r.lo land lnot (p - 1) in
  if value then
    let first_one = max r.lo (base + h) in
    first_one <= r.hi
  else
    let first_zero = if r.lo < base + h then r.lo else base + p in
    first_zero <= r.hi

let bit_can_be regions ~bit ~value =
  List.exists (fun r -> region_bit_can_be r ~bit ~value) regions

let check_regions = function
  | [] -> invalid_arg "Memmap: empty region list"
  | rs -> rs

let free_bits ~width regions =
  let regions = check_regions regions in
  List.init width Fun.id
  |> List.filter (fun bit ->
         bit_can_be regions ~bit ~value:false
         && bit_can_be regions ~bit ~value:true)

let constant_bits ~width regions =
  let regions = check_regions regions in
  List.init width Fun.id
  |> List.filter_map (fun bit ->
         let can0 = bit_can_be regions ~bit ~value:false in
         let can1 = bit_can_be regions ~bit ~value:true in
         match can0, can1 with
         | true, true -> None
         | false, true -> Some (bit, true)
         | true, false -> Some (bit, false)
         | false, false -> assert false (* regions are non-empty *))

let paper_case_study () =
  [
    region ~name:"flash" ~lo:0x0007_8000 ~hi:0x0007_FFFF ();
    region ~name:"ram" ~lo:0x4000_0000 ~hi:0x4001_FFFF ();
  ]

let pp_report ~width ppf regions =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s 0x%08X - 0x%08X@," r.name r.lo r.hi)
    regions;
  let free = free_bits ~width regions in
  Format.fprintf ppf "free bits (%d): %a@," (List.length free)
    Format.(
      pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ",")
        pp_print_int)
    free;
  let const = constant_bits ~width regions in
  Format.fprintf ppf "constant bits (%d): %a@]" (List.length const)
    Format.(
      pp_print_list
        ~pp_sep:(fun ppf () -> pp_print_string ppf ",")
        (fun ppf (b, v) -> Format.fprintf ppf "%d=%d" b (Bool.to_int v)))
    const
