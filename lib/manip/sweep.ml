open Olfu_netlist
module B = Netlist.Builder

let reachable nl =
  let n = Netlist.length nl in
  let mark = Array.make n false in
  let rec visit i =
    if not mark.(i) then begin
      mark.(i) <- true;
      Array.iter visit (Netlist.fanin nl i)
    end
  in
  Array.iter visit (Netlist.outputs nl);
  mark

let dead_nodes nl =
  let mark = reachable nl in
  let acc = ref [] in
  for i = Netlist.length nl - 1 downto 0 do
    if (not mark.(i)) && not (Cell.equal_kind (Netlist.kind nl i) Cell.Input)
    then acc := i :: !acc
  done;
  !acc

let sweep nl =
  let dead = dead_nodes nl in
  let b = B.of_netlist nl in
  List.iter (fun i -> B.remove_node b i) dead;
  (B.freeze_exn b, List.length dead)
