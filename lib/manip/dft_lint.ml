open Olfu_logic
open Olfu_netlist

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  message : string;
  node : int option;
}

let name_of nl i =
  match Netlist.name nl i with Some s -> s | None -> Printf.sprintf "n%d" i

let run nl =
  let findings = ref [] in
  let add severity code ?node message =
    findings := { severity; code; message; node } :: !findings
  in
  (* --- scan structure --- *)
  let chains = Scan_trace.trace nl in
  let on_chain = Hashtbl.create 97 in
  List.iter
    (fun c ->
      List.iter (fun ff -> Hashtbl.replace on_chain ff ()) c.Scan_trace.cells)
    chains;
  Array.iter
    (fun ff ->
      match Netlist.kind nl ff with
      | Cell.Sdff | Cell.Sdffr ->
        if not (Hashtbl.mem on_chain ff) then
          add Warning "SCAN-001" ~node:ff
            (Printf.sprintf "scan cell %s is on no traceable chain"
               (name_of nl ff))
      | Cell.Dff | Cell.Dffr ->
        add Warning "SCAN-001" ~node:ff
          (Printf.sprintf "flip-flop %s is not scan-replaced" (name_of nl ff))
      | _ -> ())
    (Netlist.seq_nodes nl);
  List.iter
    (fun c ->
      if c.Scan_trace.cells = [] then
        add Error "SCAN-002" ~node:c.Scan_trace.scan_in
          (Printf.sprintf "scan-in %s reaches no scan cell"
             (name_of nl c.Scan_trace.scan_in))
      else if c.Scan_trace.scan_out = None then
        add Warning "SCAN-003" ~node:c.Scan_trace.scan_in
          (Printf.sprintf "chain from %s has no scan-out port"
             (name_of nl c.Scan_trace.scan_in)))
    chains;
  let se_nets = Hashtbl.create 7 in
  Array.iter
    (fun ff ->
      match Netlist.kind nl ff with
      | Cell.Sdff | Cell.Sdffr ->
        Hashtbl.replace se_nets (Netlist.fanin nl ff).(2) ()
      | _ -> ())
    (Netlist.seq_nodes nl);
  if Hashtbl.length se_nets > 1 then
    add Warning "SCAN-004"
      (Printf.sprintf "%d distinct scan-enable nets" (Hashtbl.length se_nets));
  (* --- reset --- *)
  let unreset =
    Array.to_list (Netlist.seq_nodes nl)
    |> List.filter (fun ff ->
           match Netlist.kind nl ff with
           | Cell.Dff | Cell.Sdff -> true
           | _ -> false)
  in
  if unreset <> [] then
    add Warning "RST-001"
      (Printf.sprintf "%d flip-flops without reset (e.g. %s)"
         (List.length unreset)
         (name_of nl (List.hd unreset)));
  if Array.length (Netlist.nodes_with_role nl Netlist.Reset) = 0 then
    add Info "RST-002" "no input carries the reset role";
  (* --- nets --- *)
  Netlist.iter_nodes
    (fun i nd ->
      if nd.Netlist.kind = Cell.Tiex then
        add Warning "NET-001" ~node:i
          (Printf.sprintf "floating net %s" (name_of nl i)))
    nl;
  let t = Olfu_atpg.Ternary.run nl in
  let const_count = ref 0 in
  Netlist.iter_nodes
    (fun i nd ->
      if
        (not (Cell.is_tie nd.Netlist.kind))
        && nd.Netlist.kind <> Cell.Output
        && Logic4.is_binary (Olfu_atpg.Ternary.const_of t i)
      then incr const_count)
    nl;
  if !const_count > 0 then
    add Info "NET-002"
      (Printf.sprintf "%d nets constant in mission steady state" !const_count);
  (* --- observability --- *)
  let dead = Sweep.dead_nodes nl in
  if dead <> [] then
    add Warning "OBS-001"
      (Printf.sprintf "%d cells with no path to any output (e.g. %s)"
         (List.length dead)
         (name_of nl (List.hd dead)));
  (* --- testability hotspots --- *)
  let s = Olfu_atpg.Scoap.run nl in
  (match Olfu_atpg.Scoap.hardest s ~n:3 with
  | [] -> ()
  | hard ->
    add Info "TEST-001"
      (Printf.sprintf "hardest nets by SCOAP: %s"
         (String.concat ", "
            (List.map
               (fun (i, score) -> Printf.sprintf "%s (%d)" (name_of nl i) score)
               hard))));
  List.rev !findings

let errors = List.filter (fun f -> f.severity = Error)

let pp_finding nl ppf f =
  ignore nl;
  Format.fprintf ppf "%s %-9s %s"
    (match f.severity with
    | Error -> "error  "
    | Warning -> "warning"
    | Info -> "info   ")
    f.code f.message

let pp_report nl ppf findings =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," (pp_finding nl) f) findings;
  Format.fprintf ppf "%d findings (%d errors)@]" (List.length findings)
    (List.length (errors findings))
