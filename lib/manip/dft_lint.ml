(* Deprecated shim: the real engine now lives in `olfu_lint` (lib/lint),
   which subsumes these checks as registry rules with the same codes.
   This module keeps the historical API compiling for existing callers
   and maps the new findings back onto the old record. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  message : string;
  node : int option;
}

let of_lint (f : Olfu_lint.Rule.finding) =
  {
    severity =
      (match f.Olfu_lint.Rule.severity with
      | Olfu_lint.Rule.Error -> Error
      | Olfu_lint.Rule.Warning -> Warning
      | Olfu_lint.Rule.Info -> Info);
    code = f.Olfu_lint.Rule.code;
    message = f.Olfu_lint.Rule.message;
    node = f.Olfu_lint.Rule.node;
  }

let run nl = List.map of_lint (Olfu_lint.Lint.findings nl)
let errors = List.filter (fun f -> f.severity = Error)

let pp_finding nl ppf f =
  ignore nl;
  Format.fprintf ppf "%s %-9s %s"
    (match f.severity with
    | Error -> "error  "
    | Warning -> "warning"
    | Info -> "info   ")
    f.code f.message

let pp_report nl ppf findings =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," (pp_finding nl) f) findings;
  Format.fprintf ppf "%d findings (%d errors)@]" (List.length findings)
    (List.length (errors findings))
