(** Memory-map analysis (Sec. 3.3): which address bits can ever toggle,
    given the populated regions of the address space.

    "Unused address bits originate logic gates stuck to a solid value along
    all the mission behavior" — this module computes exactly which bits
    those are. *)

type region = {
  name : string;
  lo : int;  (** first address, inclusive *)
  hi : int;  (** last address, inclusive *)
}

val region : ?name:string -> lo:int -> hi:int -> unit -> region
(** Raises [Invalid_argument] unless [0 <= lo <= hi]. *)

val bit_can_be : region list -> bit:int -> value:bool -> bool
(** Does some legal address carry [value] on address bit [bit]? *)

val free_bits : width:int -> region list -> int list
(** Bits that can legally assume both 0 and 1, ascending. *)

val constant_bits : width:int -> region list -> (int * bool) list
(** Bits stuck at a single value over every legal address, with that
    value.  [free_bits] and [constant_bits] partition [0..width-1] (an
    empty region list makes every bit vacuously constant-at-neither and is
    rejected). *)

val paper_case_study : unit -> region list
(** The ranges of Sec. 4: flash [0x0007_8000, 0x0007_FFFF] and RAM
    [0x4000_0000, 0x4001_FFFF]. *)

val pp_report : width:int -> Format.formatter -> region list -> unit
