open Olfu_netlist
open Olfu_fault

type chain = {
  scan_in : int;
  cells : int list;
  scan_out : int option;
}

(* Follow the scan path leaving [net]: through buffers/inverters to the SI
   pin of the next cell, or to a scan-out port. *)
let rec next_hop nl net =
  let fanout = Netlist.fanout nl net in
  let rec scan k =
    if k >= Array.length fanout then None
    else
      let sink, pin = fanout.(k) in
      match Netlist.kind nl sink with
      | (Cell.Sdff | Cell.Sdffr) when pin = 1 -> Some (`Cell sink)
      | Cell.Output when Netlist.has_role nl sink Netlist.Scan_out ->
        Some (`Out sink)
      | Cell.Buf | Cell.Not -> (
        match next_hop nl sink with Some h -> Some h | None -> scan (k + 1))
      | _ -> scan (k + 1)
  in
  scan 0

let trace nl =
  let trace_from port =
    let rec follow net acc =
      match next_hop nl net with
      | Some (`Cell ff) -> follow ff (ff :: acc)
      | Some (`Out o) -> (List.rev acc, Some o)
      | None -> (List.rev acc, None)
    in
    let cells, scan_out = follow port [] in
    { scan_in = port; cells; scan_out }
  in
  Netlist.nodes_with_role nl Netlist.Scan_in
  |> Array.to_list
  |> List.filter (fun i -> Cell.equal_kind (Netlist.kind nl i) Cell.Input)
  |> List.map trace_from

(* Backward fixpoint: keep only candidates whose every fanout branch lands
   on an SI pin, a scan-out port, or another surviving candidate. *)
let scan_only_nodes nl =
  let n = Netlist.length nl in
  let candidate = Array.make n false in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Buf | Cell.Not -> candidate.(i) <- true
      | Cell.Input -> candidate.(i) <- Netlist.has_role nl i Netlist.Scan_in
      | _ -> ())
    nl;
  let branch_ok (sink, pin) =
    (match Netlist.kind nl sink with
    | Cell.Sdff | Cell.Sdffr -> pin = 1
    | Cell.Output -> Netlist.has_role nl sink Netlist.Scan_out
    | _ -> false)
    || candidate.(sink)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if candidate.(i) then begin
        let fo = Netlist.fanout nl i in
        if Array.length fo = 0 || not (Array.for_all branch_ok fo) then begin
          candidate.(i) <- false;
          changed := true
        end
      end
    done
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if candidate.(i) then acc := i :: !acc
  done;
  !acc

let untestable_faults nl =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Sdff | Cell.Sdffr ->
        add (Fault.sa0 i (Cell.Pin.In 1));
        add (Fault.sa1 i (Cell.Pin.In 1));
        (* mission value of SE is 0: only s@1 can corrupt the mission *)
        add (Fault.sa0 i (Cell.Pin.In 2))
      | Cell.Output when Netlist.has_role nl i Netlist.Scan_out ->
        add (Fault.sa0 i (Cell.Pin.In 0));
        add (Fault.sa1 i (Cell.Pin.In 0))
      | _ -> ())
    nl;
  List.iter
    (fun i ->
      let fanin_count = Array.length (Netlist.fanin nl i) in
      List.iter
        (fun pin ->
          add (Fault.sa0 i pin);
          add (Fault.sa1 i pin))
        (Cell.pins (Netlist.kind nl i) ~fanin_count))
    (scan_only_nodes nl);
  List.rev !acc

let prune nl fl =
  let faults = untestable_faults nl in
  let changed = ref 0 in
  List.iter
    (fun f ->
      match Flist.find fl f with
      | Some i
        when (match Flist.status fl i with
             | Status.Not_analyzed | Status.Not_detected -> true
             | _ -> false) ->
        Flist.set_status fl i (Status.Undetectable Status.Unused);
        incr changed
      | Some _ | None -> ())
    faults;
  !changed

let pp_chain nl ppf c =
  let name i =
    match Netlist.name nl i with Some s -> s | None -> Printf.sprintf "n%d" i
  in
  Format.fprintf ppf "%s -> [%d cells] -> %s" (name c.scan_in)
    (List.length c.cells)
    (match c.scan_out with Some o -> name o | None -> "(open)")
