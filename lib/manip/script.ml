open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder

type op =
  | Tie_input of string * Logic4.t
  | Tie_net of string * Logic4.t
  | Tie_pin of { node : string; pin : int; value : Logic4.t }
  | Tie_flop of string * Logic4.t
  | Float_output of string

type t = op list

let apply nl ops =
  let b = B.of_netlist nl in
  let find s = Netlist.find_exn nl s in
  List.iter
    (fun op ->
      match op with
      | Tie_input (s, v) -> Tie.Batch.input b (find s) v
      | Tie_net (s, v) -> Tie.Batch.net b (find s) v
      | Tie_pin { node; pin; value } ->
        Tie.Batch.pin b ~node:(find node) ~pin value
      | Tie_flop (s, v) -> Const_regs.tie_flop b (find s) v
      | Float_output s ->
        let o = find s in
        if not (Cell.equal_kind (Netlist.kind nl o) Cell.Output) then
          invalid_arg (Printf.sprintf "Script: %S is not an output" s);
        B.remove_node b o)
    ops;
  B.freeze_exn b

let pp_op ppf = function
  | Tie_input (s, v) -> Format.fprintf ppf "tie-input %s = %a" s Logic4.pp v
  | Tie_net (s, v) -> Format.fprintf ppf "tie-net %s = %a" s Logic4.pp v
  | Tie_pin { node; pin; value } ->
    Format.fprintf ppf "tie-pin %s.%d = %a" node pin Logic4.pp value
  | Tie_flop (s, v) -> Format.fprintf ppf "tie-flop %s = %a" s Logic4.pp v
  | Float_output s -> Format.fprintf ppf "float-output %s" s

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_op)
    t
