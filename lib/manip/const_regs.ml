open Olfu_logic
open Olfu_netlist
open Olfu_atpg
module B = Netlist.Builder

let constant_flops ?(ff_mode = Ternary.Steady_state) nl =
  let t = Ternary.run ~ff_mode nl in
  Netlist.seq_nodes nl |> Array.to_list
  |> List.filter_map (fun i ->
         let v = Ternary.const_of t i in
         if Logic4.is_binary v then Some (i, v) else None)

let constant_flops_by_toggle tog nl =
  Netlist.seq_nodes nl |> Array.to_list
  |> List.filter_map (fun i ->
         match Olfu_sim.Toggle.verdict tog i with
         | Olfu_sim.Toggle.Constant v -> Some (i, v)
         | Olfu_sim.Toggle.Never_driven | Olfu_sim.Toggle.Toggled -> None)

let tie_flop b ff v =
  Tie.Batch.pin b ~node:ff ~pin:0 v;
  Tie.Batch.net b ff v

let tie_selected nl select =
  let b = B.of_netlist nl in
  let todo = ref [] in
  Netlist.iter_nodes
    (fun i _ ->
      match select i with Some v -> todo := (i, v) :: !todo | None -> ())
    nl;
  List.iter
    (fun (i, v) ->
      if Cell.is_seq (Netlist.kind nl i) then tie_flop b i v
      else if Cell.equal_kind (Netlist.kind nl i) Cell.Input then
        Tie.Batch.input b i v
      else Tie.Batch.net b i v)
    !todo;
  B.freeze_exn b

let bit_role_value roles forced =
  List.fold_left
    (fun acc r ->
      match acc, r with
      | None, Netlist.Address_reg bit -> forced bit
      | acc, _ -> acc)
    None roles

let tie_address_registers nl ~forced =
  tie_selected nl (fun i ->
      if Cell.is_seq (Netlist.kind nl i) then
        bit_role_value (Netlist.roles_of nl i) forced
      else None)

let tie_address_ports nl ~forced =
  tie_selected nl (fun i ->
      List.fold_left
        (fun acc r ->
          match acc, r with
          | None, Netlist.Address_port bit -> forced bit
          | acc, _ -> acc)
        None (Netlist.roles_of nl i))
