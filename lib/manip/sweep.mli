open Olfu_netlist

(** Dead-logic sweep: remove every cell with no structural path to any
    output port.  Mirrors what synthesis would do to a manipulated
    netlist — the ablation that distinguishes "untestable but present"
    faults (the paper's accounting) from "logic that would simply be
    stripped". *)

val dead_nodes : Netlist.t -> int list
(** Nodes (cells, flip-flops, ties) not backward-reachable from any
    [Output] marker.  Input ports are never reported (they are pins). *)

val sweep : Netlist.t -> Netlist.t * int
(** Returns the swept netlist and the number of removed nodes. *)
