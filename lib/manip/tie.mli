open Olfu_logic
open Olfu_netlist

(** Tying manipulations (Sec. 3.2.1 / 3.3 of the paper: "connect to ground
    or Vdd ... all CPU inputs related to debug and showing a constant
    value"; "input and output of those flip flops showing a constant
    value").

    All functions build a modified copy; the original is untouched.  The
    manipulated cells stay in the netlist so their faults remain in the
    universe — the structural engine then classifies them. *)

val input : Netlist.t -> int -> Logic4.t -> Netlist.t
(** Replace a primary input with a tie cell (the port is soldered to a
    rail).  Raises [Invalid_argument] if the node is not an input. *)

val input_name : Netlist.t -> string -> Logic4.t -> Netlist.t

val net : Netlist.t -> int -> Logic4.t -> Netlist.t
(** Redirect every fanout branch of the net to a fresh tie cell, keeping
    the driver in place (its cone becomes unobservable, which is the
    point). *)

val pin : Netlist.t -> node:int -> pin:int -> Logic4.t -> Netlist.t
(** Tie a single input pin. *)

(** Batched variants over a builder, for composing many edits cheaply. *)
module Batch : sig
  val input : Netlist.Builder.t -> int -> Logic4.t -> unit
  val net : Netlist.Builder.t -> int -> Logic4.t -> unit
  val pin : Netlist.Builder.t -> node:int -> pin:int -> Logic4.t -> unit
end
