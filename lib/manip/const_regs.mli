open Olfu_logic
open Olfu_netlist

(** Constant-register detection and the tie-the-flop manipulation of
    Sec. 3.3 (step 4a: "connect to ground or Vdd input and output of those
    flip flops showing a constant value"). *)

val constant_flops :
  ?ff_mode:Olfu_atpg.Ternary.ff_mode -> Netlist.t -> (int * Logic4.t) list
(** Flip-flops provably constant in mission mode, with their value
    (default mode: {!Olfu_atpg.Ternary.Steady_state}). *)

val constant_flops_by_toggle : Olfu_sim.Toggle.t -> Netlist.t -> (int * Logic4.t) list
(** Empirical variant of the same screening, from recorded activity: flops
    that never left one value over the observed workload (the paper's
    code-coverage-based suspect selection; unlike {!constant_flops} this
    is evidence, not proof). *)

val tie_flop : Netlist.Builder.t -> int -> Logic4.t -> unit
(** Tie both the D input and the output of a flip-flop to the value —
    tying the output too lets tools that stop at flip-flop boundaries
    propagate the constant onward (the paper's Fig. 6 argument). *)

val tie_address_registers :
  Netlist.t -> forced:(int -> Logic4.t option) -> Netlist.t
(** Tie every flip-flop carrying an {!Netlist.Address_reg} role whose bit
    the memory map forces ([forced bit = Some v]). *)

val tie_address_ports :
  Netlist.t -> forced:(int -> Logic4.t option) -> Netlist.t
(** Tie nets with the {!Netlist.Address_port} role (step 4b: inputs of the
    address-manipulation modules). *)
