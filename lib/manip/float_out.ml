open Olfu_netlist
module B = Netlist.Builder

let outputs nl select =
  let b = B.of_netlist nl in
  Array.iter (fun o -> if select o then B.remove_node b o) (Netlist.outputs nl);
  B.freeze_exn b

let outputs_by_name nl names =
  let ids =
    List.map
      (fun s ->
        let i = Netlist.find_exn nl s in
        if not (Cell.equal_kind (Netlist.kind nl i) Cell.Output) then
          invalid_arg (Printf.sprintf "Float_out: %S is not an output" s);
        i)
      names
  in
  outputs nl (fun o -> List.mem o ids)

let debug_observation nl =
  outputs nl (fun o -> Netlist.has_role nl o Netlist.Debug_observe)

let predicate_keep _nl select o = not (select o)
