open Olfu_logic
open Olfu_netlist
module B = Netlist.Builder

let kind_of_value = function
  | Logic4.L0 -> Cell.Tie0
  | Logic4.L1 -> Cell.Tie1
  | Logic4.X | Logic4.Z -> Cell.Tiex

module Batch = struct
  let input b i v =
    if not (Cell.equal_kind (B.node_kind b i) Cell.Input) then
      invalid_arg "Tie.input: not a primary input";
    B.set_kind b i (kind_of_value v)

  let pin b ~node ~pin v =
    let t = B.tie b v in
    let fanin = B.node_fanin b node in
    fanin.(pin) <- t;
    B.set_fanin b node fanin

  let net b i v =
    let t = B.tie b v in
    for node = 0 to B.length b - 1 do
      let fanin = B.node_fanin b node in
      let touched = ref false in
      Array.iteri
        (fun p d ->
          if d = i then begin
            fanin.(p) <- t;
            touched := true
          end)
        fanin;
      if !touched then B.set_fanin b node fanin
    done
end

let apply f nl =
  let b = B.of_netlist nl in
  f b;
  B.freeze_exn b

let input nl i v = apply (fun b -> Batch.input b i v) nl
let input_name nl s v = input nl (Netlist.find_exn nl s) v
let net nl i v = apply (fun b -> Batch.net b i v) nl
let pin nl ~node ~pin:p v = apply (fun b -> Batch.pin b ~node ~pin:p v) nl
