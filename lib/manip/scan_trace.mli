open Olfu_netlist
open Olfu_fault

(** Scan-chain tracing and the scan pruning rule (Sec. 3.1).

    In mission mode the scan enable is tied to the functional value, so:
    {ul
    {- SI s\@0 and s\@1 of every mux-scan cell are untestable;}
    {- SE s\@0 (the functional-mode value) is untestable; {e only} SE s\@1
       must be kept — it can erroneously switch the cell into shift mode;}
    {- every fault of buffers/inverters living purely on the scan path
       (including the scan-in port and the scan-out pin) is untestable.}} *)

type chain = {
  scan_in : int;  (** the scan-in input port *)
  cells : int list;  (** mux-scan cells in shift order *)
  scan_out : int option;  (** output marker terminating the chain *)
}

val trace : Netlist.t -> chain list
(** Follows each {!Netlist.Scan_in} port through buffers/inverters and
    mux-scan SI pins up to a {!Netlist.Scan_out} port.  Cells not reached
    by any chain are simply absent from the result. *)

val scan_only_nodes : Netlist.t -> int list
(** Nodes (buffers, inverters, scan-in ports) whose every transitive
    fanout ends in SI pins or scan-out ports: the dedicated scan path. *)

val untestable_faults : Netlist.t -> Fault.t list
(** The fault set pruned by the rule, as listed above. *)

val prune : Netlist.t -> Flist.t -> int
(** Marks {!untestable_faults} as [Undetectable Unused] on faults not yet
    classified; returns the count. *)

val pp_chain : Netlist.t -> Format.formatter -> chain -> unit
