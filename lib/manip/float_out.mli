open Olfu_netlist

(** Floating (disconnecting) outputs — Sec. 3.2.2 of the paper: "unconnect
    (e.g. leave floating) all CPU outputs related to debug", so the logic
    that only feeds them becomes structurally unobservable. *)

val outputs : Netlist.t -> (int -> bool) -> Netlist.t
(** Remove every [Output]-marker node selected by the predicate. *)

val outputs_by_name : Netlist.t -> string list -> Netlist.t
(** Float the named output ports.  Unknown names raise
    [Invalid_argument]. *)

val debug_observation : Netlist.t -> Netlist.t
(** Float every output carrying the {!Netlist.Debug_observe} role. *)

val predicate_keep : Netlist.t -> (int -> bool) -> int -> bool
(** [predicate_keep nl sel] is the [observable_output] predicate matching
    what {!outputs} removes — for analyses that prefer masking over
    rebuilding. *)
