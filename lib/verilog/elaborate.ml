open Olfu_logic
open Olfu_netlist

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- net slots: union-find cells that eventually hold one driver --- *)

type driver = Dnode of int

type slot = { mutable link : link }
and link = Root of driver option | To of slot

let fresh_slot () = { link = Root None }

let rec find s = match s.link with Root _ -> s | To p ->
  let r = find p in
  s.link <- To r;
  r

let driver_of s =
  match (find s).link with Root d -> d | To _ -> assert false

let set_driver ~what s d =
  let r = find s in
  match r.link with
  | Root None -> r.link <- Root (Some d)
  | Root (Some _) -> err "multiple drivers on net %s" what
  | To _ -> assert false

let union ~what a b =
  let ra = find a and rb = find b in
  if ra != rb then begin
    let da = match ra.link with Root d -> d | To _ -> assert false in
    let db = match rb.link with Root d -> d | To _ -> assert false in
    let d =
      match da, db with
      | Some _, Some _ -> err "multiple drivers on net %s" what
      | (Some _ as d), None | None, d -> d
    in
    ra.link <- To rb;
    rb.link <- Root d
  end

(* --- primitive cell resolution --- *)

let strip_arity s =
  let n = String.length s in
  let rec go i = if i > 0 && s.[i - 1] >= '0' && s.[i - 1] <= '9' then go (i - 1) else i in
  String.sub s 0 (go n)

let prim_of_master master =
  match String.uppercase_ascii (strip_arity master) with
  | "BUF" | "BUFF" -> Some Cell.Buf
  | "NOT" | "INV" -> Some Cell.Not
  | "AND" -> Some Cell.And
  | "NAND" -> Some Cell.Nand
  | "OR" -> Some Cell.Or
  | "NOR" -> Some Cell.Nor
  | "XOR" -> Some Cell.Xor
  | "XNOR" -> Some Cell.Xnor
  | "MUX" -> Some Cell.Mux2
  | "DFF" -> Some Cell.Dff
  | "DFFR" -> Some Cell.Dffr
  | "SDFF" -> Some Cell.Sdff
  | "SDFFR" -> Some Cell.Sdffr
  | "TIE" -> (
    match String.uppercase_ascii master with
    | "TIE0" -> Some Cell.Tie0
    | "TIE1" -> Some Cell.Tie1
    | _ -> None)
  | "TIEX" -> Some Cell.Tiex
  | _ -> None

let is_output_pin p =
  match String.uppercase_ascii p with
  | "Y" | "Q" | "Z" | "O" | "OUT" -> true
  | _ -> false

let is_clock_pin p =
  match String.uppercase_ascii p with "CK" | "CLK" | "C" -> true | _ -> false

(* Canonical input-pin index for a named connection. *)
let input_pin_index kind pin =
  let p = String.uppercase_ascii pin in
  let letter () =
    if String.length p = 1 && p.[0] >= 'A' && p.[0] <= 'H' then
      Some (Char.code p.[0] - Char.code 'A')
    else None
  in
  let ix () =
    if String.length p >= 2 && (p.[0] = 'I' || p.[0] = 'D') then
      int_of_string_opt (String.sub p 1 (String.length p - 1))
    else None
  in
  match kind, p with
  | Cell.Mux2, "S" | Cell.Mux2, "SEL" -> Some 0
  | Cell.Mux2, "A" | Cell.Mux2, "D0" -> Some 1
  | Cell.Mux2, "B" | Cell.Mux2, "D1" -> Some 2
  | (Cell.Dff | Cell.Dffr | Cell.Sdff | Cell.Sdffr), "D" -> Some 0
  | Cell.Dffr, "RSTN" | Cell.Dffr, "RN" -> Some 1
  | (Cell.Sdff | Cell.Sdffr), "SI" -> Some 1
  | (Cell.Sdff | Cell.Sdffr), "SE" -> Some 2
  | Cell.Sdffr, "RSTN" | Cell.Sdffr, "RN" -> Some 3
  | (Cell.And | Cell.Nand | Cell.Or | Cell.Nor | Cell.Xor | Cell.Xnor
    | Cell.Buf | Cell.Not), _ -> (
    match letter () with Some i -> Some i | None -> ix ())
  | _ -> None

(* --- elaboration --- *)

type pending = {
  kind : Cell.kind;
  fanin : slot array;
  mutable pname : string option;
}

type ctx = {
  mods : (string, Ast.modul) Hashtbl.t;
  nodes : pending Vec.t;
  named_bits : (string * slot) Vec.t;  (* flat name -> slot, first wins *)
}

let push_node ctx kind fanin =
  Vec.push ctx.nodes { kind; fanin; pname = None }

let const_slot ctx v =
  let s = fresh_slot () in
  let idx = push_node ctx
      (match (v : Logic4.t) with
      | L0 -> Cell.Tie0
      | L1 -> Cell.Tie1
      | X | Z -> Cell.Tiex)
      [||]
  in
  set_driver ~what:"literal" s (Dnode idx);
  s

(* local environment of one module instance *)
type env = {
  prefix : string;
  decls : (string, Ast.decl) Hashtbl.t;
  bits : (string, slot) Hashtbl.t;  (* key: Ast.bit_name *)
}

let declare ctx env (d : Ast.decl) =
  if Hashtbl.mem env.decls d.Ast.dname then
    err "%snet %s declared twice" env.prefix d.Ast.dname;
  Hashtbl.add env.decls d.Ast.dname d;
  List.iter
    (fun (name, idx) ->
      let key = Ast.bit_name name idx in
      let s = fresh_slot () in
      Hashtbl.add env.bits key s;
      ignore (Vec.push ctx.named_bits (env.prefix ^ key, s) : int))
    (Ast.bits d)

let resolve_expr ctx env (e : Ast.expr) : slot list =
  match e with
  | Ast.Lit v -> [ const_slot ctx v ]
  | Ast.Bit (s, i) -> (
    match Hashtbl.find_opt env.bits (Ast.bit_name s (Some i)) with
    | Some slot -> [ slot ]
    | None -> err "%sundeclared net %s[%d]" env.prefix s i)
  | Ast.Ref s -> (
    match Hashtbl.find_opt env.decls s with
    | None -> err "%sundeclared net %s" env.prefix s
    | Some d ->
      List.map
        (fun (name, idx) -> Hashtbl.find env.bits (Ast.bit_name name idx))
        (Ast.bits d))

let scalar ctx env what e =
  match resolve_expr ctx env e with
  | [ s ] -> s
  | l -> err "%s%s: expected a scalar, got %d bits" env.prefix what (List.length l)

let rec elaborate_module ctx ~prefix (m : Ast.modul)
    ~(port_bind : (string * slot list) list) =
  let env = { prefix; decls = Hashtbl.create 37; bits = Hashtbl.create 37 } in
  List.iter
    (fun item ->
      match (item : Ast.item) with
      | Ast.Input ds | Ast.Output ds | Ast.Wire ds ->
        List.iter (declare ctx env) ds
      | Ast.Instance _ -> ())
    m.Ast.items;
  (* connect formal ports to actual slots *)
  List.iter
    (fun (port, actual) ->
      match Hashtbl.find_opt env.decls port with
      | None -> err "%smodule %s has no port %s" prefix m.Ast.mname port
      | Some d ->
        let formal =
          List.map
            (fun (name, idx) -> Hashtbl.find env.bits (Ast.bit_name name idx))
            (Ast.bits d)
        in
        if List.length formal <> List.length actual then
          err "%sport %s width mismatch (%d vs %d)" prefix port
            (List.length formal) (List.length actual);
        List.iter2 (fun f a -> union ~what:(prefix ^ port) f a) formal actual)
    port_bind;
  (* instances *)
  List.iter
    (fun item ->
      match (item : Ast.item) with
      | Ast.Input _ | Ast.Output _ | Ast.Wire _ -> ()
      | Ast.Instance { master; iname; conns } -> (
        match prim_of_master master with
        | Some kind -> elaborate_primitive ctx env ~kind ~master ~iname conns
        | None -> (
          match Hashtbl.find_opt ctx.mods master with
          | None -> err "%sunknown module or primitive %s" prefix master
          | Some sub ->
            let binds = bind_ports ctx env ~prefix ~iname sub conns in
            elaborate_module ctx
              ~prefix:(prefix ^ iname ^ "/")
              sub ~port_bind:binds)))
    m.Ast.items

and bind_ports ctx env ~prefix ~iname (sub : Ast.modul) conns =
  let named, positional =
    List.partition_map
      (fun c ->
        match (c : Ast.conn) with
        | Ast.Named (p, e) -> Left (p, e)
        | Ast.Pos e -> Right e)
      conns
  in
  match named, positional with
  | [], pos ->
    if List.length pos <> List.length sub.Ast.ports then
      err "%s%s: %d connections for %d ports" prefix iname (List.length pos)
        (List.length sub.Ast.ports);
    List.map2
      (fun port e -> (port, resolve_expr ctx env e))
      sub.Ast.ports pos
  | named, [] ->
    List.map (fun (p, e) -> (p, resolve_expr ctx env e)) named
  | _ -> err "%s%s: mixed named and positional connections" prefix iname

and elaborate_primitive ctx env ~kind ~master ~iname conns =
  let what = env.prefix ^ iname in
  let named, positional =
    List.partition_map
      (fun c ->
        match (c : Ast.conn) with
        | Ast.Named (p, e) -> Left (p, e)
        | Ast.Pos e -> Right e)
      conns
  in
  let out = ref None in
  let ins = Hashtbl.create 7 in
  let add_in i s =
    if Hashtbl.mem ins i then err "%s: input pin %d connected twice" what i;
    Hashtbl.add ins i s
  in
  (match named, positional with
  | [], e0 :: rest ->
    out := Some (scalar ctx env what e0);
    List.iteri (fun i e -> add_in i (scalar ctx env what e)) rest
  | [], [] -> err "%s: no connections" what
  | named, [] ->
    List.iter
      (fun (p, e) ->
        if is_output_pin p then out := Some (scalar ctx env what e)
        else if is_clock_pin p then ()  (* implicit global clock *)
        else
          match input_pin_index kind p with
          | Some i -> add_in i (scalar ctx env what e)
          | None -> err "%s: unknown pin %s on %s" what p master)
      named
  | _ -> err "%s: mixed named and positional connections" what);
  let n_in = Hashtbl.length ins in
  (match Cell.arity kind with
  | Some a when a <> n_in ->
    err "%s: %s expects %d inputs, got %d" what master a n_in
  | _ ->
    if n_in < Cell.min_arity kind then
      err "%s: %s expects at least %d inputs" what master (Cell.min_arity kind));
  let fanin =
    Array.init n_in (fun i ->
        match Hashtbl.find_opt ins i with
        | Some s -> s
        | None -> err "%s: missing input pin %d" what i)
  in
  let idx = push_node ctx kind fanin in
  match !out with
  | None -> err "%s: output pin not connected" what
  | Some s -> set_driver ~what s (Dnode idx)

let to_netlist ?top ?(roles = []) (design : Ast.design) =
  let mods = Hashtbl.create 17 in
  List.iter (fun m -> Hashtbl.replace mods m.Ast.mname m) design;
  let top_mod =
    match top with
    | Some name -> (
      match Hashtbl.find_opt mods name with
      | Some m -> m
      | None -> err "no module named %s" name)
    | None -> (
      match List.rev design with
      | m :: _ -> m
      | [] -> err "empty design")
  in
  let ctx = { mods; nodes = Vec.create (); named_bits = Vec.create () } in
  (* direction of top-level ports *)
  let dir = Hashtbl.create 17 in
  List.iter
    (fun item ->
      match (item : Ast.item) with
      | Ast.Input ds -> List.iter (fun d -> Hashtbl.replace dir d.Ast.dname `In) ds
      | Ast.Output ds ->
        List.iter (fun d -> Hashtbl.replace dir d.Ast.dname `Out) ds
      | Ast.Wire _ | Ast.Instance _ -> ())
    top_mod.Ast.items;
  (* pre-create port slots so inputs drive and outputs observe *)
  let port_slots =
    List.map
      (fun p ->
        let d =
          List.find_map
            (fun item ->
              match (item : Ast.item) with
              | Ast.Input ds | Ast.Output ds | Ast.Wire ds ->
                List.find_opt (fun d -> d.Ast.dname = p) ds
              | Ast.Instance _ -> None)
            top_mod.Ast.items
        in
        let d = match d with Some d -> d | None -> err "port %s undeclared" p in
        (p, List.map (fun _ -> fresh_slot ()) (Ast.bits d), d))
      top_mod.Ast.ports
  in
  List.iter
    (fun (p, slots, d) ->
      match Hashtbl.find_opt dir p with
      | Some `In ->
        List.iter2
          (fun s (name, idx) ->
            let i = push_node ctx Cell.Input [||] in
            (Vec.get ctx.nodes i).pname <- Some (Ast.bit_name name idx);
            set_driver ~what:p s (Dnode i))
          slots (Ast.bits d)
      | Some `Out -> ()
      | None -> err "port %s has no direction" p)
    port_slots;
  elaborate_module ctx ~prefix:""
    top_mod
    ~port_bind:(List.map (fun (p, slots, _) -> (p, slots)) port_slots);
  (* output markers *)
  List.iter
    (fun (p, slots, d) ->
      match Hashtbl.find_opt dir p with
      | Some `Out ->
        List.iter2
          (fun s (name, idx) ->
            let i = push_node ctx Cell.Output [| s |] in
            (Vec.get ctx.nodes i).pname <-
              Some (Ast.bit_name name idx ^ "$out"))
          slots (Ast.bits d)
      | Some `In | None -> ())
    port_slots;
  (* name nets from declarations *)
  Vec.iteri
    (fun _ (flat, s) ->
      match driver_of s with
      | Some (Dnode i) ->
        let nd = Vec.get ctx.nodes i in
        if nd.pname = None then nd.pname <- Some flat
      | None -> ())
    ctx.named_bits;
  (* materialize: resolve fanin slots; undriven -> shared Tiex *)
  let floating = ref None in
  let resolve s =
    match driver_of s with
    | Some (Dnode i) -> i
    | None -> (
      match !floating with
      | Some i -> i
      | None ->
        let i = push_node ctx Cell.Tiex [||] in
        floating := Some i;
        i)
  in
  let n = Vec.length ctx.nodes in
  (* resolution may append the shared Tiex; snapshot first *)
  let fanins = Array.init n (fun i -> Array.map resolve (Vec.get ctx.nodes i).fanin) in
  let total = Vec.length ctx.nodes in
  let nodes =
    Array.init total (fun i ->
        let p = Vec.get ctx.nodes i in
        {
          Netlist.kind = p.kind;
          fanin = (if i < n then fanins.(i) else [||]);
          name = p.pname;
        })
  in
  (* dedupe names *)
  let seen = Hashtbl.create 97 in
  let nodes =
    Array.map
      (fun nd ->
        match nd.Netlist.name with
        | None -> nd
        | Some s ->
          if Hashtbl.mem seen s then begin
            let k = ref 1 in
            while Hashtbl.mem seen (Printf.sprintf "%s$%d" s !k) do incr k done;
            let s' = Printf.sprintf "%s$%d" s !k in
            Hashtbl.add seen s' ();
            { nd with Netlist.name = Some s' }
          end
          else begin
            Hashtbl.add seen s ();
            nd
          end)
      nodes
  in
  match Netlist.create nodes with
  | Error errs ->
    err "elaboration produced an invalid netlist: %a"
      Format.(
        pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf "; ")
          Netlist.pp_error)
      errs
  | Ok nl ->
    if roles = [] then nl
    else begin
      let b = Netlist.Builder.of_netlist nl in
      List.iter
        (fun (name, role) ->
          match Netlist.find nl name with
          | Some i -> Netlist.Builder.add_role b i role
          | None -> err "role annotation on unknown net %s" name)
        roles;
      Netlist.Builder.freeze_exn b
    end

(* --- role sidecar --- *)

let role_of_tag tag =
  let int_suffix prefix =
    let plen = String.length prefix in
    if String.length tag > plen && String.sub tag 0 plen = prefix then
      int_of_string_opt (String.sub tag plen (String.length tag - plen))
    else None
  in
  match tag with
  | "clock" -> Some Netlist.Clock
  | "reset" -> Some Netlist.Reset
  | "scan-enable" -> Some Netlist.Scan_enable
  | "scan-in" -> Some Netlist.Scan_in
  | "scan-out" -> Some Netlist.Scan_out
  | "debug-control" -> Some Netlist.Debug_control
  | "debug-observe" -> Some Netlist.Debug_observe
  | _ -> (
    match int_suffix "address-reg:" with
    | Some i -> Some (Netlist.Address_reg i)
    | None -> (
      match int_suffix "address-port:" with
      | Some i -> Some (Netlist.Address_port i)
      | None -> None))

let roles_of_source src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let prefix = "//@role " in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           let rest =
             String.sub line (String.length prefix)
               (String.length line - String.length prefix)
           in
           match String.index_opt rest ' ' with
           | None -> None
           | Some sp ->
             let name = String.sub rest 0 sp in
             let tag =
               String.trim (String.sub rest (sp + 1) (String.length rest - sp - 1))
             in
             Option.map (fun r -> (name, r)) (role_of_tag tag)
         else None)

let netlist_of_string ?top src =
  let design = Parser.design_of_string src in
  to_netlist ?top ~roles:(roles_of_source src) design

let netlist_of_file ?top path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  netlist_of_string ?top src
