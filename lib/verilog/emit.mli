open Olfu_netlist

(** Flat netlist → structural Verilog.

    Output-port markers become [BUF] cells driving the port net, all flops
    get an explicit [.CK(clk)] on a generated [clk] input, and node roles
    are written as ["//@role <net> <tag>"] sidecar comments that
    {!Elaborate.roles_of_source} reads back. *)

val to_string : ?module_name:string -> Netlist.t -> string
val to_file : ?module_name:string -> Netlist.t -> string -> unit
