type token =
  | Ident of string
  | Number of int
  | Literal of Olfu_logic.Logic4.t
  | Kw_module
  | Kw_endmodule
  | Kw_input
  | Kw_output
  | Kw_wire
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Colon
  | Dot
  | Eof

exception Error of { line : int; message : string }

type t = {
  src : string;
  mutable pos : int;
  mutable lin : int;
  mutable lookahead : token option;
}

let of_string src = { src; pos = 0; lin = 1; lookahead = None }
let line t = t.lin
let fail t message = raise (Error { line = t.lin; message })

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '\\'

let is_id_char c =
  is_id_start c || (c >= '0' && c <= '9') || c = '$'

let rec skip_space t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_space t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.lin <- t.lin + 1;
      skip_space t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_space t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      t.pos <- t.pos + 2;
      let rec close () =
        if t.pos + 1 >= String.length t.src then fail t "unterminated comment"
        else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = '/' then
          t.pos <- t.pos + 2
        else begin
          if t.src.[t.pos] = '\n' then t.lin <- t.lin + 1;
          t.pos <- t.pos + 1;
          close ()
        end
      in
      close ();
      skip_space t
    | '(' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      (* attribute instances: skip to the closing star-paren *)
      t.pos <- t.pos + 2;
      let rec close () =
        if t.pos + 1 >= String.length t.src then fail t "unterminated attribute"
        else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = ')' then
          t.pos <- t.pos + 2
        else begin
          if t.src.[t.pos] = '\n' then t.lin <- t.lin + 1;
          t.pos <- t.pos + 1;
          close ()
        end
      in
      close ();
      skip_space t
    | _ -> ()

let read_ident t =
  let start = t.pos in
  if t.src.[t.pos] = '\\' then begin
    (* escaped identifier: up to whitespace *)
    t.pos <- t.pos + 1;
    let s = t.pos in
    while
      t.pos < String.length t.src
      && not
           (match t.src.[t.pos] with
           | ' ' | '\t' | '\n' | '\r' -> true
           | _ -> false)
    do
      t.pos <- t.pos + 1
    done;
    String.sub t.src s (t.pos - s)
  end
  else begin
    while t.pos < String.length t.src && is_id_char t.src.[t.pos] do
      t.pos <- t.pos + 1
    done;
    String.sub t.src start (t.pos - start)
  end

let read_number t =
  let start = t.pos in
  while
    t.pos < String.length t.src
    && t.src.[t.pos] >= '0'
    && t.src.[t.pos] <= '9'
  do
    t.pos <- t.pos + 1
  done;
  let digits = String.sub t.src start (t.pos - start) in
  (* sized binary literal: 1'b0 / 1'b1 / 1'bx *)
  if t.pos + 2 < String.length t.src && t.src.[t.pos] = '\'' then begin
    let base = Char.lowercase_ascii t.src.[t.pos + 1] in
    if base <> 'b' then fail t "only binary literals are supported";
    let v = Char.lowercase_ascii t.src.[t.pos + 2] in
    t.pos <- t.pos + 3;
    match v with
    | '0' -> Literal Olfu_logic.Logic4.L0
    | '1' -> Literal Olfu_logic.Logic4.L1
    | 'x' -> Literal Olfu_logic.Logic4.X
    | 'z' -> Literal Olfu_logic.Logic4.Z
    | _ -> fail t "bad literal value"
  end
  else Number (int_of_string digits)

let lex t =
  skip_space t;
  if t.pos >= String.length t.src then Eof
  else
    let c = t.src.[t.pos] in
    if is_id_start c then
      match read_ident t with
      | "module" -> Kw_module
      | "endmodule" -> Kw_endmodule
      | "input" -> Kw_input
      | "output" -> Kw_output
      | "wire" -> Kw_wire
      | id -> Ident id
    else if c >= '0' && c <= '9' then read_number t
    else begin
      t.pos <- t.pos + 1;
      match c with
      | '(' -> Lparen
      | ')' -> Rparen
      | '[' -> Lbracket
      | ']' -> Rbracket
      | ',' -> Comma
      | ';' -> Semi
      | ':' -> Colon
      | '.' -> Dot
      | c -> fail t (Printf.sprintf "unexpected character %C" c)
    end

let next t =
  match t.lookahead with
  | Some tok ->
    t.lookahead <- None;
    tok
  | None -> lex t

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
    let tok = lex t in
    t.lookahead <- Some tok;
    tok

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Number n -> Format.fprintf ppf "number %d" n
  | Literal v -> Format.fprintf ppf "literal 1'b%c" (Olfu_logic.Logic4.to_char v)
  | Kw_module -> Format.pp_print_string ppf "'module'"
  | Kw_endmodule -> Format.pp_print_string ppf "'endmodule'"
  | Kw_input -> Format.pp_print_string ppf "'input'"
  | Kw_output -> Format.pp_print_string ppf "'output'"
  | Kw_wire -> Format.pp_print_string ppf "'wire'"
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Comma -> Format.pp_print_string ppf "','"
  | Semi -> Format.pp_print_string ppf "';'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Dot -> Format.pp_print_string ppf "'.'"
  | Eof -> Format.pp_print_string ppf "end of input"
