(** AST of the structural-Verilog subset.

    Supported: scalar and vector ([\[msb:lsb\]]) declarations, primitive
    and module instances with named or positional connections, bit-selects,
    and the literals [1'b0]/[1'b1]/[1'bx].  No behavioural constructs, no
    expressions, no parameters — this is a netlist exchange format. *)

type range = { msb : int; lsb : int }

type decl = { dname : string; drange : range option }

type expr =
  | Ref of string  (** scalar net or full vector (in declarations' width) *)
  | Bit of string * int  (** [name\[i\]] *)
  | Lit of Olfu_logic.Logic4.t  (** [1'b0], [1'b1], [1'bx] *)

type conn =
  | Named of string * expr  (** [.A(x)] *)
  | Pos of expr

type item =
  | Input of decl list
  | Output of decl list
  | Wire of decl list
  | Instance of { master : string; iname : string; conns : conn list }

type modul = { mname : string; ports : string list; items : item list }

type design = modul list

val width : decl -> int
val bits : decl -> (string * int option) list
(** Scalar bit names of a declaration: [("x", None)] or
    [("x", Some i)] for each index, msb first. *)

val bit_name : string -> int option -> string
(** Canonical flat name: ["x"] or ["x[3]"]. *)
