exception Error of { line : int; message : string }

let fail lx message = raise (Error { line = Lexer.line lx; message })

let expect lx tok label =
  let got = Lexer.next lx in
  if got <> tok then
    fail lx
      (Format.asprintf "expected %s, got %a" label Lexer.pp_token got)

let ident lx =
  match Lexer.next lx with
  | Lexer.Ident s -> s
  | got -> fail lx (Format.asprintf "expected identifier, got %a" Lexer.pp_token got)

let number lx =
  match Lexer.next lx with
  | Lexer.Number n -> n
  | got -> fail lx (Format.asprintf "expected number, got %a" Lexer.pp_token got)

(* [ msb : lsb ] *)
let range_opt lx =
  match Lexer.peek lx with
  | Lexer.Lbracket ->
    ignore (Lexer.next lx : Lexer.token);
    let msb = number lx in
    expect lx Lexer.Colon "':'";
    let lsb = number lx in
    expect lx Lexer.Rbracket "']'";
    Some { Ast.msb; lsb }
  | _ -> None

let decl_list lx =
  let drange = range_opt lx in
  let rec more acc =
    let d = { Ast.dname = ident lx; drange } in
    match Lexer.peek lx with
    | Lexer.Comma ->
      ignore (Lexer.next lx : Lexer.token);
      more (d :: acc)
    | _ ->
      expect lx Lexer.Semi "';'";
      List.rev (d :: acc)
  in
  more []

let expr lx =
  match Lexer.next lx with
  | Lexer.Literal v -> Ast.Lit v
  | Lexer.Ident s -> (
    match Lexer.peek lx with
    | Lexer.Lbracket ->
      ignore (Lexer.next lx : Lexer.token);
      let i = number lx in
      expect lx Lexer.Rbracket "']'";
      Ast.Bit (s, i)
    | _ -> Ast.Ref s)
  | got -> fail lx (Format.asprintf "expected net expression, got %a" Lexer.pp_token got)

let connection lx =
  match Lexer.peek lx with
  | Lexer.Dot ->
    ignore (Lexer.next lx : Lexer.token);
    let pin = ident lx in
    expect lx Lexer.Lparen "'('";
    (* allow unconnected pins: .RSTN() *)
    let e =
      match Lexer.peek lx with
      | Lexer.Rparen -> Ast.Lit Olfu_logic.Logic4.Z
      | _ -> expr lx
    in
    expect lx Lexer.Rparen "')'";
    Ast.Named (pin, e)
  | _ -> Ast.Pos (expr lx)

let connections lx =
  expect lx Lexer.Lparen "'('";
  match Lexer.peek lx with
  | Lexer.Rparen ->
    ignore (Lexer.next lx : Lexer.token);
    []
  | _ ->
    let rec more acc =
      let c = connection lx in
      match Lexer.next lx with
      | Lexer.Comma -> more (c :: acc)
      | Lexer.Rparen -> List.rev (c :: acc)
      | got ->
        fail lx (Format.asprintf "expected ',' or ')', got %a" Lexer.pp_token got)
    in
    more []

let item lx =
  match Lexer.next lx with
  | Lexer.Kw_input -> Ast.Input (decl_list lx)
  | Lexer.Kw_output -> Ast.Output (decl_list lx)
  | Lexer.Kw_wire -> Ast.Wire (decl_list lx)
  | Lexer.Ident master ->
    let iname = ident lx in
    let conns = connections lx in
    expect lx Lexer.Semi "';'";
    Ast.Instance { master; iname; conns }
  | got -> fail lx (Format.asprintf "expected module item, got %a" Lexer.pp_token got)

let port_list lx =
  match Lexer.peek lx with
  | Lexer.Lparen ->
    ignore (Lexer.next lx : Lexer.token);
    (match Lexer.peek lx with
    | Lexer.Rparen ->
      ignore (Lexer.next lx : Lexer.token);
      []
    | _ ->
      let rec more acc =
        let p = ident lx in
        match Lexer.next lx with
        | Lexer.Comma -> more (p :: acc)
        | Lexer.Rparen -> List.rev (p :: acc)
        | got ->
          fail lx
            (Format.asprintf "expected ',' or ')', got %a" Lexer.pp_token got)
      in
      more [])
  | _ -> []

let modul lx =
  expect lx Lexer.Kw_module "'module'";
  let mname = ident lx in
  let ports = port_list lx in
  expect lx Lexer.Semi "';'";
  let rec items acc =
    match Lexer.peek lx with
    | Lexer.Kw_endmodule ->
      ignore (Lexer.next lx : Lexer.token);
      List.rev acc
    | Lexer.Eof -> fail lx "missing endmodule"
    | _ -> items (item lx :: acc)
  in
  { Ast.mname; ports; items = items [] }

let design_of_string src =
  let lx = Lexer.of_string src in
  try
    let rec mods acc =
      match Lexer.peek lx with
      | Lexer.Eof -> List.rev acc
      | _ -> mods (modul lx :: acc)
    in
    mods []
  with Lexer.Error { line; message } -> raise (Error { line; message })

let design_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  design_of_string src
