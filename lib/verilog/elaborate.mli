open Olfu_netlist

(** Hierarchical elaboration: AST → flat {!Netlist.t}.

    Instance nets get hierarchical names ([inst/net]); undriven nets and
    unconnected pins elaborate to [Tiex] (a floating net reads as X).
    Multiple drivers on one net are an error. *)

exception Error of string

val to_netlist : ?top:string -> ?roles:(string * Netlist.role) list -> Ast.design -> Netlist.t
(** [top] defaults to the last module of the design.  [roles] attaches
    roles by flat net name after elaboration; unknown names are an
    error. *)

val roles_of_source : string -> (string * Netlist.role) list
(** Extracts role annotations from ["//@role <net> <tag>"] comment lines
    (the sidecar format {!Emit} writes). *)

val netlist_of_string : ?top:string -> string -> Netlist.t
(** Parse, elaborate and apply embedded role annotations. *)

val netlist_of_file : ?top:string -> string -> Netlist.t
