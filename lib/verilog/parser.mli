(** Recursive-descent parser for the structural-Verilog subset. *)

exception Error of { line : int; message : string }

val design_of_string : string -> Ast.design
val design_of_file : string -> Ast.design
