(** Hand-rolled lexer for the structural-Verilog subset. *)

type token =
  | Ident of string
  | Number of int
  | Literal of Olfu_logic.Logic4.t  (** 1'b0 / 1'b1 / 1'bx *)
  | Kw_module
  | Kw_endmodule
  | Kw_input
  | Kw_output
  | Kw_wire
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Colon
  | Dot
  | Eof

type t

exception Error of { line : int; message : string }

val of_string : string -> t
val next : t -> token
val peek : t -> token
val line : t -> int

val pp_token : Format.formatter -> token -> unit
