type range = { msb : int; lsb : int }
type decl = { dname : string; drange : range option }

type expr = Ref of string | Bit of string * int | Lit of Olfu_logic.Logic4.t

type conn = Named of string * expr | Pos of expr

type item =
  | Input of decl list
  | Output of decl list
  | Wire of decl list
  | Instance of { master : string; iname : string; conns : conn list }

type modul = { mname : string; ports : string list; items : item list }
type design = modul list

let width d =
  match d.drange with
  | None -> 1
  | Some { msb; lsb } -> abs (msb - lsb) + 1

let bits d =
  match d.drange with
  | None -> [ (d.dname, None) ]
  | Some { msb; lsb } ->
    let step = if msb >= lsb then -1 else 1 in
    let rec go i acc =
      if i = lsb then List.rev ((d.dname, Some i) :: acc)
      else go (i + step) ((d.dname, Some i) :: acc)
    in
    go msb []

let bit_name name = function
  | None -> name
  | Some i -> Printf.sprintf "%s[%d]" name i
