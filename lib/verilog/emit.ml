open Olfu_netlist

let sanitize s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "n" ^ s else s

let strip_out_suffix s =
  let suf = "$out" in
  if String.length s > String.length suf
     && String.sub s (String.length s - String.length suf) (String.length suf)
        = suf
  then String.sub s 0 (String.length s - String.length suf)
  else s

let role_tag = function
  | Netlist.Clock -> "clock"
  | Netlist.Reset -> "reset"
  | Netlist.Scan_enable -> "scan-enable"
  | Netlist.Scan_in -> "scan-in"
  | Netlist.Scan_out -> "scan-out"
  | Netlist.Debug_control -> "debug-control"
  | Netlist.Debug_observe -> "debug-observe"
  | Netlist.Address_reg i -> Printf.sprintf "address-reg:%d" i
  | Netlist.Address_port i -> Printf.sprintf "address-port:%d" i

let to_string ?(module_name = "top") nl =
  let buf = Buffer.create 4096 in
  let taken = Hashtbl.create 97 in
  let uniquify base =
    if not (Hashtbl.mem taken base) then begin
      Hashtbl.add taken base ();
      base
    end
    else begin
      let k = ref 1 in
      while Hashtbl.mem taken (Printf.sprintf "%s_%d" base !k) do incr k done;
      let s = Printf.sprintf "%s_%d" base !k in
      Hashtbl.add taken s ();
      s
    end
  in
  Hashtbl.add taken "clk" ();
  let n = Netlist.length nl in
  (* net name for the value driven by node i *)
  let net_name = Array.make n "" in
  (* port name for output markers *)
  let port_name = Array.make n "" in
  Netlist.iter_nodes
    (fun i nd ->
      let base =
        match nd.Netlist.name with
        | Some s ->
          sanitize
            (if Cell.equal_kind nd.Netlist.kind Cell.Output then
               strip_out_suffix s
             else s)
        | None -> Printf.sprintf "n%d" i
      in
      if Cell.equal_kind nd.Netlist.kind Cell.Output then
        port_name.(i) <- uniquify base
      else net_name.(i) <- uniquify base)
    nl;
  let has_flops = Array.length (Netlist.seq_nodes nl) > 0 in
  (* header *)
  let ports = Buffer.create 256 in
  Array.iter
    (fun i ->
      Buffer.add_string ports (net_name.(i));
      Buffer.add_string ports ", ")
    (Netlist.inputs nl);
  if has_flops then Buffer.add_string ports "clk, ";
  Array.iter
    (fun o ->
      Buffer.add_string ports (port_name.(o));
      Buffer.add_string ports ", ")
    (Netlist.outputs nl);
  let ports = Buffer.contents ports in
  let ports =
    if String.length ports >= 2 then String.sub ports 0 (String.length ports - 2)
    else ports
  in
  Buffer.add_string buf (Printf.sprintf "module %s (%s);\n" module_name ports);
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" net_name.(i)))
    (Netlist.inputs nl);
  if has_flops then Buffer.add_string buf "  input clk;\n";
  Array.iter
    (fun o ->
      Buffer.add_string buf (Printf.sprintf "  output %s;\n" port_name.(o)))
    (Netlist.outputs nl);
  (* wires *)
  Netlist.iter_nodes
    (fun i nd ->
      match nd.Netlist.kind with
      | Cell.Input | Cell.Output -> ()
      | _ -> Buffer.add_string buf (Printf.sprintf "  wire %s;\n" net_name.(i)))
    nl;
  (* instances *)
  Netlist.iter_nodes
    (fun i nd ->
      let fanin p = net_name.(nd.Netlist.fanin.(p)) in
      let inst master conns =
        Buffer.add_string buf
          (Printf.sprintf "  %s u%d (%s);\n" master i (String.concat ", " conns))
      in
      let y = Printf.sprintf ".Y(%s)" net_name.(i) in
      let q = Printf.sprintf ".Q(%s)" net_name.(i) in
      let nins = Array.length nd.Netlist.fanin in
      let gate master =
        let letters = [| "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" |] in
        let conns =
          List.init nins (fun p ->
              if p < Array.length letters then
                Printf.sprintf ".%s(%s)" letters.(p) (fanin p)
              else Printf.sprintf ".I%d(%s)" p (fanin p))
        in
        inst (Printf.sprintf "%s%d" master nins) (y :: conns)
      in
      match nd.Netlist.kind with
      | Cell.Input -> ()
      | Cell.Output ->
        inst "BUF"
          [ Printf.sprintf ".Y(%s)" port_name.(i);
            Printf.sprintf ".A(%s)" (fanin 0) ]
      | Cell.Tie0 -> inst "TIE0" [ y ]
      | Cell.Tie1 -> inst "TIE1" [ y ]
      | Cell.Tiex -> inst "TIEX" [ y ]
      | Cell.Buf -> inst "BUF" [ y; Printf.sprintf ".A(%s)" (fanin 0) ]
      | Cell.Not -> inst "INV" [ y; Printf.sprintf ".A(%s)" (fanin 0) ]
      | Cell.And -> gate "AND"
      | Cell.Nand -> gate "NAND"
      | Cell.Or -> gate "OR"
      | Cell.Nor -> gate "NOR"
      | Cell.Xor -> gate "XOR"
      | Cell.Xnor -> gate "XNOR"
      | Cell.Mux2 ->
        inst "MUX2"
          [ y;
            Printf.sprintf ".S(%s)" (fanin 0);
            Printf.sprintf ".A(%s)" (fanin 1);
            Printf.sprintf ".B(%s)" (fanin 2) ]
      | Cell.Dff ->
        inst "DFF" [ q; Printf.sprintf ".D(%s)" (fanin 0); ".CK(clk)" ]
      | Cell.Dffr ->
        inst "DFFR"
          [ q;
            Printf.sprintf ".D(%s)" (fanin 0);
            Printf.sprintf ".RSTN(%s)" (fanin 1);
            ".CK(clk)" ]
      | Cell.Sdff ->
        inst "SDFF"
          [ q;
            Printf.sprintf ".D(%s)" (fanin 0);
            Printf.sprintf ".SI(%s)" (fanin 1);
            Printf.sprintf ".SE(%s)" (fanin 2);
            ".CK(clk)" ]
      | Cell.Sdffr ->
        inst "SDFFR"
          [ q;
            Printf.sprintf ".D(%s)" (fanin 0);
            Printf.sprintf ".SI(%s)" (fanin 1);
            Printf.sprintf ".SE(%s)" (fanin 2);
            Printf.sprintf ".RSTN(%s)" (fanin 3);
            ".CK(clk)" ])
    nl;
  Buffer.add_string buf "endmodule\n";
  (* role sidecar: reparsing names output markers <port>$out *)
  List.iter
    (fun (i, r) ->
      let name =
        if Cell.equal_kind (Netlist.kind nl i) Cell.Output then
          port_name.(i) ^ "$out"
        else net_name.(i)
      in
      Buffer.add_string buf
        (Printf.sprintf "//@role %s %s\n" name (role_tag r)))
    (List.sort compare (Netlist.role_assignments nl));
  Buffer.contents buf

let to_file ?module_name nl path =
  let oc = open_out path in
  output_string oc (to_string ?module_name nl);
  close_out oc
