(** The analysis daemon: a Unix-domain-socket server speaking
    line-delimited JSON ({!Request} in, {!Response} out, one compact
    object per line).

    [workers] accept-loop domains share one listening socket and one
    {!Session}, so every connection sees the same artifact cache and
    concurrent requests run in parallel (each flow additionally fans out
    over its own domain pool per the request's [jobs]).  A malformed
    line gets a [Bad_input] response and the connection stays open; a
    [shutdown] request is answered, then the listening socket closes,
    sibling accept loops unblock, in-flight requests finish, and
    {!serve} returns.

    With [audit] set, every run request appends one compact
    {!Olfu_obs.Manifest} line to the audit file: the request's config
    fields plus [cache_hit], the engines' spans and counters recorded
    during that request, and its wall seconds — the daemon's flight
    recorder. *)

type config = {
  socket : string;  (** path of the Unix-domain socket to bind *)
  workers : int;  (** accept-loop domains (clamped to at least 1) *)
  byte_budget : int option;  (** session cache budget; default 1 GiB *)
  audit : string option;  (** per-request manifest log, JSON lines *)
}

val default : socket:string -> config
(** [workers = 2], default budget, no audit log. *)

val serve : config -> unit
(** Bind, accept and serve until a [shutdown] request arrives.  Replaces
    any stale socket file at the path; removes it on exit.  [SIGPIPE]
    is ignored for the whole process (a client hanging up mid-response
    must not kill the daemon). *)
