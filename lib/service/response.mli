(** Typed responses of the analysis service.

    A response carries the finished rendering ([output], exactly the
    bytes the one-shot CLI would print for the same request) plus an
    envelope: the request [id], an exit status, whether the session
    cache satisfied the request, and the server-side wall time.  Wall
    time lives {e only} in the envelope — the payload is deterministic,
    which is what makes daemon and one-shot output byte-identical. *)

(** Maps one-to-one onto the CLI exit-code convention (see
    {!exit_code}): [Success] = 0, [Findings] = 1 (the analysis ran and
    reported violations — lint fails, degraded abstract states, an
    inconsistent safety report), [Bad_input] = 2 (the request itself was
    unusable: unknown config, unreadable file, malformed JSON). *)
type status = Success | Findings | Bad_input

val exit_code : status -> int
val status_of_code : int -> status option

type t = {
  id : int;  (** echoed from the request *)
  status : status;
  cache_hit : bool;
      (** the outcome came from the session cache; no engine ran *)
  seconds : float;  (** server-side wall time for the operation *)
  output : string;
      (** rendered result in the request's format; print verbatim *)
  error : string option;  (** diagnostic for [Bad_input] *)
}

val make :
  ?cache_hit:bool ->
  ?seconds:float ->
  ?error:string ->
  id:int ->
  status:status ->
  string ->
  t

val fail : id:int -> string -> t
(** A [Bad_input] response with empty output and the given
    diagnostic. *)

val to_json : t -> Olfu_obs.Json.t
val of_json : Olfu_obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val to_line : t -> string
