module J = Olfu_obs.Json
module Trace = Olfu_obs.Trace
module Manifest = Olfu_obs.Manifest
module Netlist = Olfu_netlist.Netlist
module Cell = Olfu_netlist.Cell
module Req = Request
module Resp = Response

type meta = {
  steps : Manifest.step list;
  prep : (string * float) list;
  extras : (string * J.t) list;
  aux : (string * string) list;
}

let empty_meta = { steps = []; prep = []; extras = []; aux = [] }

(* A request whose inputs are unusable.  Raised inside builders, turned
   into a [Bad_input] response at the dispatch boundary — the daemon
   must never die on a client's request. *)
exception Bad_request of string

let badf fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let soc_of_name = function
  | "tcore32" -> Some Olfu_soc.Soc.tcore32
  | "tcore32_dft" -> Some Olfu_soc.Soc.tcore32_dft
  | "tcore16" -> Some Olfu_soc.Soc.tcore16
  | _ -> None

let rc_of sink (r : Req.run) =
  {
    Olfu.Run_config.ff_mode = r.ff_mode;
    jobs = r.jobs;
    implic = r.implic;
    trace = sink;
  }

let config_fields (r : Req.run) =
  let base =
    match Olfu.Run_config.to_json (rc_of Trace.null r) with
    | J.Obj l -> l
    | _ -> []
  in
  let target =
    match r.target with
    | Req.Config n -> ("soc", J.Str n)
    | Req.File p -> ("file", J.Str p)
  in
  target :: ("op", J.Str (Req.op_name r.op))
  :: ("params", Req.params_json r.op)
  :: base

(* -- target resolution -------------------------------------------- *)

(* File targets key on path + stat so an edited netlist re-elaborates;
   config targets are immutable by name. *)
let target_key = function
  | Req.Config name -> "netlist/config/" ^ name
  | Req.File path -> (
    match Unix.stat path with
    | st ->
      Printf.sprintf "netlist/file/%s@%.6f+%d" path st.Unix.st_mtime
        st.Unix.st_size
    | exception Unix.Unix_error (e, _, _) ->
      badf "%s: %s" path (Unix.error_message e))

let load session (r : Req.run) : Session.loaded =
  let key = target_key r.target in
  let build () =
    match r.target with
    | Req.Config name -> (
      match soc_of_name name with
      | None ->
        badf "unknown config %S (tcore32|tcore32_dft|tcore16)" name
      | Some cfg ->
        let nl = Olfu_soc.Soc.generate cfg in
        Session.Loaded
          {
            Session.nl;
            mission = Olfu.Mission.of_soc cfg nl;
            digest = Olfu_netlist.Analysis.digest_of nl;
            cfg = Some cfg;
          })
    | Req.File path ->
      let nl =
        try Olfu_verilog.Elaborate.netlist_of_file path
        with e -> badf "%s" (Printexc.to_string e)
      in
      Session.Loaded
        {
          Session.nl;
          mission =
            Olfu.Mission.of_roles
              ~memmap:(Olfu_manip.Memmap.paper_case_study ())
              ~address_width:32 nl;
          digest = Olfu_netlist.Analysis.digest_of nl;
          cfg = None;
        }
  in
  match Session.memo session key build with
  | Session.Loaded l, _ -> l
  | _ -> assert false

(* The generated-SoC ops (absint, safety, coverage: they need the ROM,
   RAM and SBST suite of a configuration, not just a netlist). *)
let require_cfg (l : Session.loaded) op =
  match l.cfg with
  | Some cfg -> cfg
  | None ->
    badf "%s requires a generated configuration (tcore32|tcore32_dft|tcore16)"
      op

(* The shared flow artifact: analyze, invar, slice and coverage all
   start from the same report, so a warm session runs it once. *)
let flow_of session sink (r : Req.run) (l : Session.loaded) =
  let key =
    Printf.sprintf "%s/flow/%s/%s" l.Session.digest
      (Olfu.Run_config.ff_mode_name r.ff_mode)
      (if r.implic then "implic" else "noimplic")
  in
  match
    Session.memo session key (fun () ->
        Session.Flow (Olfu.Flow.run (rc_of sink r) l.Session.nl l.Session.mission))
  with
  | Session.Flow f, hit -> (f, hit)
  | _ -> assert false

(* -- shared renderings -------------------------------------------- *)

(* Aligned key/value table: the --format summary rendering. *)
let table rows =
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
  in
  let b = Buffer.create 256 in
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%-*s  %s\n" w k v)) rows;
  Buffer.contents b

let json_line j = J.to_string ~indent:true j ^ "\n"

let verdict_fields l =
  List.map
    (fun (u, n) ->
      (Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u), J.Int n))
    l

let manifest_steps (r : Olfu.Flow.report) =
  List.map
    (fun (s : Olfu.Flow.step_report) ->
      {
        Manifest.name = Olfu.Flow.source_name s.Olfu.Flow.source;
        seconds = s.Olfu.Flow.seconds;
        classified = s.Olfu.Flow.classified;
        verdicts =
          List.map
            (fun (u, n) ->
              (Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u), n))
            s.Olfu.Flow.by_verdict;
      })
    r.Olfu.Flow.steps

(* Table I as structured JSON.  Deliberately excludes every wall-clock
   field of the report (per-step seconds, prep, total) — the payload
   must be deterministic so cached and fresh answers are
   byte-identical; timing travels in the response envelope and the
   manifest instead. *)
let flow_payload (r : Olfu.Flow.report) =
  let open Olfu.Flow in
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 r.universe) in
  let row n = J.Obj [ ("count", J.Int n); ("percent", J.Float (pct n)) ] in
  let scan = step_count r Scan in
  let ctl = step_count r Debug_control in
  let obs = step_count r Debug_observe in
  let mem = step_count r Memory in
  J.Obj
    [
      ("universe", J.Int r.universe);
      ("collapsed", J.Int r.collapsed);
      ("dominance_pruned", J.Int r.dominance_pruned);
      ( "steps",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("source", J.Str (source_name s.source));
                   ("classified", J.Int s.classified);
                   ("by_verdict", J.Obj (verdict_fields s.by_verdict));
                 ])
             r.steps) );
      ( "table1",
        J.Obj
          [
            ("scan", row scan);
            ("debug", row (ctl + obs));
            ("debug_control", J.Int ctl);
            ("debug_observe", J.Int obs);
            ("memory", row mem);
            ("total", row (paper_total r));
            ("baseline", J.Int (step_count r Baseline));
            ("grand_total", row r.total_olfu);
          ] );
    ]

let coverage_payload (s : Olfu_sbst.Coverage.summary) =
  let open Olfu_sbst.Coverage in
  J.Obj
    [
      ( "programs",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("name", J.Str p.pname);
                   ("cycles", J.Int p.cycles);
                   ("newly_detected", J.Int p.newly_detected);
                 ])
             s.programs) );
      ("total_faults", J.Int s.total_faults);
      ("detected", J.Int s.detected);
      ("undetectable", J.Int s.undetectable);
      ("raw_coverage", J.Float s.raw_coverage);
      ("pruned_coverage", J.Float s.pruned_coverage);
    ]

let flow_meta (flow : Olfu.Flow.report) extras =
  {
    steps = manifest_steps flow;
    prep = flow.Olfu.Flow.prep;
    extras;
    aux = [];
  }

(* -- per-op builders: (outcome, meta) ------------------------------ *)

let exec_analyze session sink (r : Req.run) l ~paper =
  let flow, _ = flow_of session sink r l in
  let open Olfu.Flow in
  let text =
    Format.asprintf "%a@.@.%a@.@.%a@." Netlist.pp_summary l.Session.nl
      (pp_table1 ~paper) flow Olfu_fault.Flist.pp_summary flow.flist
  in
  let summary =
    table
      [
        ("universe", string_of_int flow.universe);
        ("collapsed", string_of_int flow.collapsed);
        ("dominance pruned", string_of_int flow.dominance_pruned);
        ("scan", string_of_int (step_count flow Scan));
        ( "debug",
          string_of_int
            (step_count flow Debug_control + step_count flow Debug_observe)
        );
        ("memory", string_of_int (step_count flow Memory));
        ("paper total", string_of_int (paper_total flow));
        ("baseline", string_of_int (step_count flow Baseline));
        ("grand total", string_of_int flow.total_olfu);
      ]
  in
  ( {
      Session.json = json_line (flow_payload flow);
      text;
      summary;
      status = Resp.Success;
      aux = [];
    },
    flow_meta flow
      [
        ("universe", J.Int flow.universe);
        ("collapsed", J.Int flow.collapsed);
        ("dominance_pruned", J.Int flow.dominance_pruned);
      ] )

let exec_lint _session _sink (_r : Req.run) (l : Session.loaded) ~waivers
    ~baseline ~disabled ~software ~invariants ~fail_on =
  let module L = Olfu_lint in
  let nl = l.Session.nl in
  let waivers =
    match waivers with
    | None -> []
    | Some p -> (
      match L.Config.load_waivers p with
      | Ok w -> w
      | Error m -> badf "%s" m)
  in
  let baseline =
    match baseline with
    | Some p when Sys.file_exists p -> (
      match L.Config.load_baseline p with
      | Ok b -> b
      | Error m -> badf "%s" m)
    | Some _ | None -> []
  in
  let config =
    { L.Config.default with L.Config.waivers; baseline; disabled }
  in
  let sw =
    if not software then None
    else
      match l.Session.cfg with
      | None -> badf "--software requires a generated configuration"
      | Some cfg ->
        let named =
          List.map
            (fun p ->
              (p.Olfu_sbst.Programs.pname, Olfu_absint.Absint.of_program cfg p))
            (Olfu_sbst.Programs.suite cfg)
        in
        Some
          (Olfu_absint.Absint.software_facts
             ~label:(cfg.Olfu_soc.Soc.name ^ "-suite")
             cfg nl named)
  in
  let inv =
    if not invariants then None
    else
      let module Inv = Olfu_invar.Invar in
      let hold =
        List.concat_map
          (fun role ->
            Netlist.nodes_with_role nl role
            |> Array.to_list
            |> List.filter (fun i ->
                   Cell.equal_kind (Netlist.kind nl i) Cell.Input)
            |> List.map (fun i -> (i, false)))
          [ Netlist.Debug_control; Netlist.Scan_enable; Netlist.Scan_in ]
      in
      Some (Inv.lint_facts (Inv.run ~hold nl))
  in
  let o = L.Lint.run ~config ?software:sw ?invariants:inv nl in
  let fail =
    match fail_on with
    | Req.Never -> false
    | Req.Fail_on s -> L.Lint.fails ~fail_on:s o
  in
  let baseline_lines = L.Config.baseline_of_findings nl o.L.Lint.findings in
  ( {
      Session.json = Format.asprintf "%a" L.Render.json o;
      text = Format.asprintf "%a@." L.Render.text o;
      summary = Format.asprintf "%a@." L.Render.summary o;
      status = (if fail then Resp.Findings else Resp.Success);
      aux =
        [
          ("baseline", String.concat "\n" baseline_lines);
          ("findings", string_of_int (List.length o.L.Lint.findings));
        ];
    },
    { empty_meta with
      extras =
        [ ("findings", J.Int (List.length o.L.Lint.findings)) ]
    } )

let exec_implic _session sink (r : Req.run) (l : Session.loaded) ~learn_depth
    ~learn_budget ~invariants =
  let module U = Olfu_atpg.Untestable in
  let module I = Olfu_atpg.Implic in
  let nl = l.Session.nl in
  let jobs = r.jobs in
  ignore sink;
  let t = U.analyze ~ff_mode:r.ff_mode ~learn_depth ~learn_budget nl in
  let ui =
    if not invariants then 0
    else
      let module Inv = Olfu_invar.Invar in
      let ir = Inv.run ~jobs nl in
      let strengthened =
        U.analyze ~learn_depth ~learn_budget
          ~consts:
            (Olfu_atpg.Ternary.run ~ff_mode:r.ff_mode
               ~assume:(Inv.assume_facts ir) nl)
          ~extra_edges:(Inv.edges ir) nl
      in
      List.assoc Olfu_fault.Status.Invariant
        (U.untestable_breakdown ~invariant:strengthened t nl)
  in
  let db =
    match U.implication_db t with
    | Some db -> db
    | None -> assert false (* analyze builds one unless [~implic:false] *)
  in
  let s = I.stats db in
  let scr = I.Scratch.create db in
  let conflicts = I.conflict_nets ~limit:10 db scr in
  let fl = Olfu_fault.Flist.full nl in
  let classified = U.classify ~jobs t fl in
  let count c =
    Olfu_fault.Flist.count_status fl (Olfu_fault.Status.Undetectable c)
  in
  let ut = count Olfu_fault.Status.Tied
  and ub = count Olfu_fault.Status.Blocked
  and uc = count Olfu_fault.Status.Conflict
  and us = count Olfu_fault.Status.Software in
  let tdf_un, tdf_univ = Olfu_atpg.Tdf_classify.count ~jobs t nl in
  let net_name n =
    match Netlist.name nl n with
    | Some x -> x
    | None -> Printf.sprintf "n%d" n
  in
  let text =
    let b = Buffer.create 512 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "implication database (%d nodes)\n" (Netlist.length nl);
    pf "  literals      %8d\n" s.I.literals;
    pf "  direct edges  %8d\n" s.I.direct_edges;
    pf "  learned edges %8d  (depth %d, budget %d, spent %d)\n"
      s.I.learned_edges s.I.learn_depth s.I.learn_budget s.I.learn_spent;
    pf "  impossible    %8d  (build-time sweep)\n" s.I.impossible_learned;
    pf "  build time    %8.3f s\n" s.I.build_seconds;
    pf "stuck-at universe %d: untestable %d (UT %d, UB %d, UC %d)\n"
      (Olfu_fault.Flist.size fl) classified ut ub uc;
    if invariants then
      pf "invariant-strengthened: %d more conflict-untestable (UI)\n" ui;
    pf "transition universe %d: untestable %d\n" tdf_univ tdf_un;
    if conflicts <> [] then begin
      pf "conflict nets (sample):\n";
      List.iter
        (fun (n, v) ->
          pf "  %-24s can never be %d\n" (net_name n) (if v then 1 else 0))
        conflicts
    end;
    Buffer.contents b
  in
  (* build_seconds stays out of the payload: it is wall clock, and the
     JSON rendering must be identical between a fresh and a cached
     answer *)
  let payload =
    J.Obj
      [
        ("nodes", J.Int (Netlist.length nl));
        ("literals", J.Int s.I.literals);
        ("direct_edges", J.Int s.I.direct_edges);
        ("learned_edges", J.Int s.I.learned_edges);
        ("impossible_learned", J.Int s.I.impossible_learned);
        ("learn_depth", J.Int s.I.learn_depth);
        ("learn_budget", J.Int s.I.learn_budget);
        ("learn_spent", J.Int s.I.learn_spent);
        ("universe", J.Int (Olfu_fault.Flist.size fl));
        ("untestable", J.Int classified);
        ( "by_verdict",
          J.Obj
            [
              ("UT", J.Int ut); ("UB", J.Int ub); ("UC", J.Int uc);
              ("US", J.Int us); ("UI", J.Int ui);
            ] );
        ("tdf_universe", J.Int tdf_univ);
        ("tdf_untestable", J.Int tdf_un);
        ( "conflict_nets",
          J.List
            (List.map
               (fun (n, v) ->
                 J.Obj
                   [
                     ("net", J.Str (net_name n));
                     ("impossible_value", J.Int (if v then 1 else 0));
                   ])
               conflicts) );
      ]
  in
  let summary =
    table
      [
        ("nodes", string_of_int (Netlist.length nl));
        ("literals", string_of_int s.I.literals);
        ("direct edges", string_of_int s.I.direct_edges);
        ("learned edges", string_of_int s.I.learned_edges);
        ("impossible", string_of_int s.I.impossible_learned);
        ("build seconds", Printf.sprintf "%.3f" s.I.build_seconds);
        ("universe", string_of_int (Olfu_fault.Flist.size fl));
        ("untestable", string_of_int classified);
        ("UT", string_of_int ut);
        ("UB", string_of_int ub);
        ("UC", string_of_int uc);
        ("US", string_of_int us);
        ("UI", string_of_int ui);
        ("TDF universe", string_of_int tdf_univ);
        ("TDF untestable", string_of_int tdf_un);
      ]
  in
  ( {
      Session.json = json_line payload;
      text;
      summary;
      status = Resp.Success;
      aux = [];
    },
    { empty_meta with
      extras =
        [ ("untestable", J.Int classified); ("tdf_untestable", J.Int tdf_un) ]
    } )

let exec_absint _session _sink (_r : Req.run) (l : Session.loaded) ~programs
    ~asm =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  let cfg = require_cfg l "absint" in
  let suite = P.suite cfg in
  let named =
    match asm with
    | Some path -> (
      try
        [
          ( Filename.basename path,
            A.of_items cfg (Olfu_sbst.Asm.parse_file path) );
        ]
      with
      | Olfu_sbst.Asm.Parse_error { line; message } ->
        badf "%s:%d: %s" path line message
      | Invalid_argument m | Sys_error m -> badf "%s" m)
    | None ->
      let chosen =
        if programs = [] then suite
        else
          List.map
            (fun name ->
              match List.find_opt (fun p -> p.P.pname = name) suite with
              | Some p -> p
              | None ->
                badf "unknown program %S (one of: %s)" name
                  (String.concat ", " (List.map (fun p -> p.P.pname) suite)))
            programs
      in
      List.map (fun p -> (p.P.pname, A.of_program cfg p)) chosen
  in
  let ts = List.map snd named in
  let width = cfg.Olfu_soc.Soc.xlen in
  let regions = [ cfg.Olfu_soc.Soc.rom; cfg.Olfu_soc.Soc.ram ] in
  let consts = A.constant_addr_bits ~width ts in
  let rdata = A.rdata_constant_bits ~width ts in
  let check = A.cross_check ~width ts regions in
  let never = A.never_written ts cfg.Olfu_soc.Soc.ram in
  let assume = A.netlist_assume ~width ts l.Session.nl in
  let degraded = List.exists (fun t -> A.degraded t <> None) ts in
  let text =
    let b = Buffer.create 512 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    List.iter
      (fun (name, t) ->
        match A.degraded t with
        | Some msg ->
          pf "%-18s %4d words  DEGRADED: %s\n" name (A.image_length t) msg
        | None ->
          pf "%-18s %4d words  %3d dead  %d store sites  %d passes\n" name
            (A.image_length t)
            (List.length (A.dead_pcs t))
            (A.store_sites t) (A.passes t))
      named;
    let bits bs =
      if bs = [] then "none"
      else
        String.concat " "
          (List.map
             (fun (bit, v) -> Printf.sprintf "%d=%d" bit (Bool.to_int v))
             bs)
    in
    pf "constant address bits: %s\n" (bits consts);
    pf "constant rdata bits:   %s\n" (bits rdata);
    pf "netlist assumptions:   %d nodes\n" (List.length assume);
    List.iter
      (fun (lo, hi) -> pf "never-written RAM:     [0x%X, 0x%X]\n" lo hi)
      never;
    if check.A.ok then pf "cross-check vs memory map: OK\n"
    else
      List.iter (fun v -> pf "cross-check VIOLATION: %s\n" v) check.A.violations;
    Buffer.contents b
  in
  let bits_json bits =
    J.List
      (List.map
         (fun (bit, v) ->
           J.Obj [ ("bit", J.Int bit); ("value", J.Int (Bool.to_int v)) ])
         bits)
  in
  let payload =
    J.Obj
      [
        ("config", J.Str cfg.Olfu_soc.Soc.name);
        ( "programs",
          J.List
            (List.map
               (fun (name, t) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("words", J.Int (A.image_length t));
                     ("dead", J.Int (List.length (A.dead_pcs t)));
                     ("stores", J.Int (A.store_sites t));
                     ("passes", J.Int (A.passes t));
                     ( "degraded",
                       match A.degraded t with
                       | None -> J.Null
                       | Some m -> J.Str m );
                   ])
               named) );
        ("constant_addr_bits", bits_json consts);
        ("constant_rdata_bits", bits_json rdata);
        ("assume_nodes", J.Int (List.length assume));
        ( "never_written_ram",
          J.List
            (List.map (fun (lo, hi) -> J.List [ J.Int lo; J.Int hi ]) never)
        );
        ("cross_check_ok", J.Bool check.A.ok);
        ("violations", J.List (List.map (fun v -> J.Str v) check.A.violations));
      ]
  in
  let summary =
    let bits bs =
      if bs = [] then "none"
      else
        String.concat " "
          (List.map
             (fun (bit, v) -> Printf.sprintf "%d=%d" bit (Bool.to_int v))
             bs)
    in
    table
      [
        ("config", cfg.Olfu_soc.Soc.name);
        ("programs", string_of_int (List.length named));
        ( "degraded",
          string_of_int
            (List.length (List.filter (fun t -> A.degraded t <> None) ts)) );
        ("constant addr bits", bits consts);
        ("constant rdata bits", bits rdata);
        ("assume nodes", string_of_int (List.length assume));
        ( "never-written RAM",
          if never = [] then "none"
          else
            String.concat " "
              (List.map
                 (fun (lo, hi) -> Printf.sprintf "[0x%X,0x%X]" lo hi)
                 never) );
        ("cross-check", if check.A.ok then "OK" else "VIOLATED");
      ]
  in
  ( {
      Session.json = json_line payload;
      text;
      summary;
      status =
        (if (not check.A.ok) || degraded then Resp.Findings
         else Resp.Success);
      aux = [];
    },
    { empty_meta with
      extras =
        [
          ("cross_check_ok", J.Bool check.A.ok);
          ("assume_nodes", J.Int (List.length assume));
        ]
    } )

let exec_invar session sink (r : Req.run) (l : Session.loaded) ~k ~no_prove =
  let module Inv = Olfu_invar.Invar in
  let module Sc = Olfu_safety.Classify in
  let flow, _ = flow_of session sink r l in
  let machine = Sc.bmc_machine flow.Olfu.Flow.mission_netlist in
  let res = Inv.run ~k ~jobs:r.jobs ~trace:sink ~no_prove machine in
  let cand_str c = Format.asprintf "%a" (Inv.pp_candidate machine) c in
  let payload =
    J.Obj
      [
        ("flops", J.Int res.Inv.total_ffs);
        ("mined", J.Int (List.length res.Inv.mined));
        ("killed", J.Int (List.length res.Inv.killed));
        ("unproved", J.Int (List.length res.Inv.unproved));
        ("proved", J.Int (List.length res.Inv.proved));
        ("k", J.Int res.Inv.k);
        ( "by_class",
          J.Obj
            (List.map
               (fun (cls, p, rest) ->
                 (cls, J.Obj [ ("proved", J.Int p); ("open", J.Int rest) ]))
               (Inv.count_by_class res)) );
        ( "invariants",
          J.List
            (List.map
               (fun (inv : Inv.invariant) ->
                 J.Obj
                   [
                     ("class", J.Str (Inv.class_name inv.Inv.form));
                     ("form", J.Str (cand_str inv.Inv.form));
                     ("k", J.Int inv.Inv.cert.Inv.cert_k);
                     ("rounds", J.Int inv.Inv.cert.Inv.cert_rounds);
                   ])
               res.Inv.proved) );
      ]
  in
  let summary =
    table
      ([
         ("flops", string_of_int res.Inv.total_ffs);
         ("mined", string_of_int (List.length res.Inv.mined));
         ("sim-killed", string_of_int (List.length res.Inv.killed));
         ("unproved", string_of_int (List.length res.Inv.unproved));
         ("proved", string_of_int (List.length res.Inv.proved));
         ("k", string_of_int res.Inv.k);
       ]
      @ List.map
          (fun (cls, p, rest) ->
            ("class " ^ cls, Printf.sprintf "%d proved / %d open" p rest))
          (Inv.count_by_class res))
  in
  ( {
      Session.json = json_line payload;
      text = Format.asprintf "%a@." (Inv.pp machine) res;
      summary;
      status = Resp.Success;
      aux = [];
    },
    flow_meta flow [ ("invariants_proved", J.Int (List.length res.Inv.proved)) ]
  )

let exec_safety _session sink (r : Req.run) (l : Session.loaded) ~window
    ~seu_limit =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  let module Sc = Olfu_safety.Classify in
  let module T = Olfu_safety.Taxonomy in
  let module Seu = Olfu_safety.Seu in
  let cfg = require_cfg l "safety" in
  let nl = l.Session.nl in
  let named =
    List.map (fun p -> (p.P.pname, A.of_program cfg p)) (P.suite cfg)
  in
  let facts =
    A.activation_facts ~label:(cfg.Olfu_soc.Soc.name ^ "-suite") cfg named
  in
  let config =
    { Sc.default with Sc.rc = rc_of sink r; window; seu_limit }
  in
  let res = Sc.run ~config ~facts nl l.Session.mission in
  let seu_counts =
    [
      ("seu_masked", res.Sc.seu.Seu.masked);
      ("seu_protected", res.Sc.seu.Seu.protected_);
      ("seu_vulnerable", res.Sc.seu.Seu.vulnerable);
      ("seu_unknown", res.Sc.seu.Seu.unknown);
    ]
  in
  let payload =
    J.Obj
      [
        ("config", J.Str cfg.Olfu_soc.Soc.name);
        ("universe", J.Int res.Sc.universe);
        ( "classes",
          J.Obj
            (List.map (fun (c, n) -> (T.safe_code c, J.Int n)) res.Sc.counts)
        );
        ( "software_safe_by",
          J.Obj
            (List.map
               (fun (u, n) ->
                 ( Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u),
                   J.Int n ))
               res.Sc.software_by) );
        ( "invariant_safe_by",
          J.Obj
            (List.map
               (fun (u, n) ->
                 ( Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u),
                   J.Int n ))
               res.Sc.invariant_by) );
        ( "invariants",
          match res.Sc.invariants with
          | None -> J.Null
          | Some ir ->
            let module Inv = Olfu_invar.Invar in
            J.Obj
              [
                ("mined", J.Int (List.length ir.Inv.mined));
                ("proved", J.Int (List.length ir.Inv.proved));
                ("k", J.Int ir.Inv.k);
              ] );
        ("assume_nodes", J.Int res.Sc.assume_nodes);
        ( "seu",
          J.Obj
            (("window", J.Int res.Sc.seu.Seu.window)
            :: ("total_ffs", J.Int res.Sc.seu.Seu.total_ffs)
            :: ("checked", J.Int (Array.length res.Sc.seu.Seu.results))
            :: List.map (fun (k, n) -> (k, J.Int n)) seu_counts) );
        ("consistency", J.List (List.map (fun v -> J.Str v) res.Sc.consistency));
        ("flow", flow_payload res.Sc.flow);
      ]
  in
  let summary =
    table
      (("universe", string_of_int res.Sc.universe)
       :: List.map
            (fun (c, n) -> (T.safe_code c, string_of_int n))
            res.Sc.counts
      @ [ ("seu_checked", string_of_int (Array.length res.Sc.seu.Seu.results)) ]
      @ List.map (fun (k, n) -> (k, string_of_int n)) seu_counts
      @ [ ("consistent", if Sc.consistent res then "yes" else "NO") ])
  in
  let consistent = Sc.consistent res in
  ( {
      Session.json = json_line payload;
      text = Format.asprintf "%a@." Sc.pp res;
      summary;
      status = (if consistent then Resp.Success else Resp.Findings);
      aux = [];
    },
    flow_meta res.Sc.flow
      (List.map (fun (c, n) -> (T.safe_code c, J.Int n)) res.Sc.counts
      @ List.map (fun (k, n) -> (k, J.Int n)) seu_counts) )

let exec_slice session sink (r : Req.run) (l : Session.loaded) =
  let module Sl = Olfu_slice.Slice in
  let module Sc = Olfu_safety.Classify in
  let flow, _ = flow_of session sink r l in
  let machine = Sc.bmc_machine flow.Olfu.Flow.mission_netlist in
  let g = Sl.get machine in
  let edge_count (e : Sl.edges) =
    let ff = Array.fold_left (fun a s -> a + Array.length s) 0 e.Sl.supports in
    let inf = Array.fold_left (fun a s -> a + Array.length s) 0 e.Sl.in_deps in
    let fo =
      Array.fold_left (fun a (_, s) -> a + Array.length s) 0 e.Sl.out_deps
    in
    (ff, inf, fo)
  in
  let variants =
    [
      ("structural", g.Sl.structural);
      ("hard", g.Sl.hard_edges);
      ("mission", g.Sl.mission_edges);
    ]
  in
  let dists =
    List.map (fun (n, e) -> (n, Sl.dist_of (Sl.backward_sizes g e))) variants
  in
  let mscc = Sl.scc g.Sl.mission_edges (Array.length g.Sl.flops) in
  let largest =
    Array.fold_left (fun a c -> max a (Array.length c)) 0 mscc.Sl.comps
  in
  let dist_json (d : Sl.dist) =
    J.Obj
      [
        ("count", J.Int d.Sl.count);
        ("min", J.Int d.Sl.min_);
        ("max", J.Int d.Sl.max_);
        ("mean", J.Float d.Sl.mean);
        ("median", J.Int d.Sl.median);
        ("p90", J.Int d.Sl.p90);
      ]
  in
  let payload =
    J.Obj
      [
        ("flops", J.Int (Array.length g.Sl.flops));
        ( "edges",
          J.Obj
            (List.map
               (fun (n, e) ->
                 let ff, inf, fo = edge_count e in
                 ( n,
                   J.Obj
                     [
                       ("flop_flop", J.Int ff);
                       ("input_flop", J.Int inf);
                       ("flop_output", J.Int fo);
                     ] ))
               variants) );
        ( "backward_slice_sizes",
          J.Obj (List.map (fun (n, d) -> (n, dist_json d)) dists) );
        ( "mission_scc",
          J.Obj
            [
              ("components", J.Int (Array.length mscc.Sl.comps));
              ("largest", J.Int largest);
            ] );
      ]
  in
  let summary =
    table
      ([ ("flops", string_of_int (Array.length g.Sl.flops)) ]
      @ List.concat_map
          (fun (n, e) ->
            let ff, inf, fo = edge_count e in
            [
              (n ^ " edges", Printf.sprintf "%d ff / %d in / %d out" ff inf fo);
            ])
          variants
      @ List.map
          (fun (n, d) ->
            ( n ^ " slice size",
              Printf.sprintf "med %d / p90 %d / max %d" d.Sl.median d.Sl.p90
                d.Sl.max_ ))
          dists
      @ [
          ("mission sccs", string_of_int (Array.length mscc.Sl.comps));
          ("largest scc", string_of_int largest);
        ])
  in
  ( {
      Session.json = json_line payload;
      text = Format.asprintf "%a@." Sl.pp_stats g;
      summary;
      status = Resp.Success;
      (* the DOT condensation is cheap relative to the flow, so it is
         always cached with the outcome; the [--dot] flag only decides
         whether the adapter writes it out *)
      aux = [ ("dot", Sl.condensation_dot g g.Sl.mission_edges) ];
    },
    flow_meta flow
      [
        ("mission_sccs", J.Int (Array.length mscc.Sl.comps));
        ("largest_scc", J.Int largest);
      ] )

let exec_coverage session sink (r : Req.run) (l : Session.loaded) ~sample =
  let cfg = require_cfg l "coverage" in
  let nl = l.Session.nl in
  let flow, _ = flow_of session sink r l in
  let fl = flow.Olfu.Flow.flist in
  let rng = Random.State.make [| 42 |] in
  let n = Olfu_fault.Flist.size fl in
  let chosen = Hashtbl.create sample in
  while Hashtbl.length chosen < min sample n do
    Hashtbl.replace chosen (Random.State.int rng n) ()
  done;
  let idx =
    List.sort compare (Hashtbl.fold (fun i () a -> i :: a) chosen [])
  in
  let faults = Array.of_list (List.map (Olfu_fault.Flist.fault fl) idx) in
  let sub = Olfu_fault.Flist.create nl faults in
  List.iteri
    (fun k i -> Olfu_fault.Flist.set_status sub k (Olfu_fault.Flist.status fl i))
    idx;
  let summary_r =
    Olfu_sbst.Coverage.grade ~jobs:r.jobs ~trace:sink cfg nl sub
      (Olfu_sbst.Programs.suite cfg)
  in
  let open Olfu_sbst.Coverage in
  let text =
    Format.asprintf "%a@.@.%a@."
      (Olfu.Flow.pp_table1 ~paper:false)
      flow pp_summary summary_r
  in
  let summary =
    table
      ([
         ("sample", string_of_int (Olfu_fault.Flist.size sub));
         ("total faults", string_of_int summary_r.total_faults);
         ("detected", string_of_int summary_r.detected);
         ("undetectable", string_of_int summary_r.undetectable);
         ("raw coverage", Printf.sprintf "%.2f%%" summary_r.raw_coverage);
         ("pruned coverage", Printf.sprintf "%.2f%%" summary_r.pruned_coverage);
       ]
      @ List.map
          (fun p ->
            ( "program " ^ p.pname,
              Printf.sprintf "%d cycles / %d new" p.cycles p.newly_detected ))
          summary_r.programs)
  in
  ( {
      Session.json =
        json_line
          (J.Obj
             [
               ("flow", flow_payload flow);
               ("coverage", coverage_payload summary_r);
             ]);
      text;
      summary;
      status = Resp.Success;
      aux = [];
    },
    flow_meta flow [ ("sample", J.Int (Olfu_fault.Flist.size sub)) ] )

(* -- dispatch ------------------------------------------------------ *)

(* Parts of a run's inputs that live outside the request: the contents
   of server-side files the op reads.  Folding their stat into the
   outcome key keeps a cached answer from surviving an edit to a waiver,
   baseline or assembly file. *)
let file_stamp = function
  | None -> "-"
  | Some p -> (
    match Unix.stat p with
    | st -> Printf.sprintf "%s@%.6f+%d" p st.Unix.st_mtime st.Unix.st_size
    | exception Unix.Unix_error _ -> p ^ "@missing")

let outcome_salt (r : Req.run) =
  match r.op with
  | Req.Lint { waivers; baseline; _ } ->
    "/" ^ file_stamp waivers ^ "/" ^ file_stamp baseline
  | Req.Absint { asm; _ } -> "/" ^ file_stamp asm
  | _ -> ""

let build_outcome session sink (r : Req.run) l =
  match r.op with
  | Req.Analyze { paper } -> exec_analyze session sink r l ~paper
  | Req.Lint { waivers; baseline; disabled; software; invariants; fail_on } ->
    exec_lint session sink r l ~waivers ~baseline ~disabled ~software
      ~invariants ~fail_on
  | Req.Implic { learn_depth; learn_budget; invariants } ->
    exec_implic session sink r l ~learn_depth ~learn_budget ~invariants
  | Req.Absint { programs; asm } ->
    exec_absint session sink r l ~programs ~asm
  | Req.Invar { k; no_prove } -> exec_invar session sink r l ~k ~no_prove
  | Req.Safety { window; seu_limit } ->
    exec_safety session sink r l ~window ~seu_limit
  | Req.Slice _ -> exec_slice session sink r l
  | Req.Coverage { sample } -> exec_coverage session sink r l ~sample

let render (fmt : Req.fmt) (o : Session.outcome) =
  match fmt with
  | Req.Text -> o.Session.text
  | Req.Json -> o.Session.json
  | Req.Summary -> o.Session.summary

let run_op session sink id (r : Req.run) =
  let l = load session r in
  let key = l.Session.digest ^ "/" ^ Req.fingerprint r ^ outcome_salt r in
  let meta_ref = ref empty_meta in
  let seconds_ref = ref 0. in
  let t0 = Unix.gettimeofday () in
  let v, hit =
    Session.memo session key (fun () ->
        let b0 = Unix.gettimeofday () in
        let o, m = build_outcome session sink r l in
        let spent = Unix.gettimeofday () -. b0 in
        (* the "service" prep entry accounts for render/dispatch time not
           attributed to any flow step, so manifest step coverage still
           matches wall *)
        let attributed =
          List.fold_left (fun a (s : Manifest.step) -> a +. s.Manifest.seconds)
            0. m.steps
          +. List.fold_left (fun a (_, s) -> a +. s) 0. m.prep
        in
        seconds_ref := spent;
        meta_ref :=
          { m with prep = m.prep @ [ ("service", max 0. (spent -. attributed)) ] };
        Session.Outcome o)
  in
  let seconds = if hit then Unix.gettimeofday () -. t0 else !seconds_ref in
  let o = match v with Session.Outcome o -> o | _ -> assert false in
  ( {
      Resp.id;
      status = o.Session.status;
      cache_hit = hit;
      seconds;
      output = render r.fmt o;
      error = None;
    },
    { !meta_ref with aux = o.Session.aux } )

let execute session ?(sink = Trace.null) (req : Req.t) =
  match req.Req.body with
  | Req.Ping ->
    (Resp.make ~id:req.Req.id ~status:Resp.Success "pong\n", empty_meta)
  | Req.Stats ->
    ( Resp.make ~id:req.Req.id ~status:Resp.Success
        (json_line (Session.stats_json (Session.stats session))),
      empty_meta )
  | Req.Shutdown ->
    (Resp.make ~id:req.Req.id ~status:Resp.Success "bye\n", empty_meta)
  | Req.Run r -> (
    try run_op session sink req.Req.id r with
    | Bad_request msg -> (Resp.fail ~id:req.Req.id msg, empty_meta)
    | Stack_overflow | Out_of_memory ->
      (Resp.fail ~id:req.Req.id "resource exhaustion", empty_meta))
