module J = Olfu_obs.Json
module Trace = Olfu_obs.Trace
module Manifest = Olfu_obs.Manifest

type config = {
  socket : string;
  workers : int;
  byte_budget : int option;
  audit : string option;
}

let default ~socket = { socket; workers = 2; byte_budget = None; audit = None }

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  session : Session.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  audit_m : Mutex.t;
}

let audit_record st (req : Request.t) (resp : Response.t) (meta : Service.meta)
    sink =
  match (st.cfg.audit, req.Request.body) with
  | Some path, Request.Run r ->
    let config =
      Service.config_fields r
      @ [
          ("request_id", J.Int req.Request.id);
          ("cache_hit", J.Bool resp.Response.cache_hit);
          ("status", J.Int (Response.exit_code resp.Response.status));
        ]
    in
    let m =
      Manifest.make ~config ~steps:meta.Service.steps ~prep:meta.Service.prep
        ~extra:meta.Service.extras ~wall_seconds:resp.Response.seconds sink
    in
    Mutex.lock st.audit_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.audit_m)
      (fun () -> Manifest.append_line m path)
  | _ -> ()

let send oc resp =
  output_string oc (Response.to_line resp);
  output_char oc '\n';
  flush oc

(* Serve one line; [false] means stop reading from this connection. *)
let handle_line st oc line =
  match Request.of_string line with
  | Error msg ->
    send oc (Response.fail ~id:0 ("bad request: " ^ msg));
    true
  | Ok req ->
    let sink =
      match (st.cfg.audit, req.Request.body) with
      | Some _, Request.Run _ -> Trace.create ()
      | _ -> Trace.null
    in
    let resp, meta = Service.execute st.session ~sink req in
    Atomic.incr st.served;
    (match req.Request.body with
    | Request.Shutdown ->
      Atomic.set st.stop true;
      send oc resp;
      (* shutdown (not close) wakes sibling workers blocked on the
         listening socket: close would leave their in-flight accept(2)
         hanging on the still-open file description *)
      (try Unix.shutdown st.listen_fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      false
    | _ ->
      send oc resp;
      audit_record st req resp meta sink;
      true)

let handle_conn st fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
      if String.trim line = "" then loop ()
      else
        let continue =
          try handle_line st oc line
          with Sys_error _ -> false (* client hung up mid-response *)
        in
        if continue && not (Atomic.get st.stop) then loop ()
  in
  loop ();
  (* ic and oc share the descriptor; close_out flushes and closes it,
     the second close's EBADF is expected *)
  (try close_out oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop st =
  let exception Done in
  try
    while not (Atomic.get st.stop) do
      (* poll with a timeout so a worker parked here always notices
         [stop] even if the wake-up shutdown is lost to a race *)
      match Unix.select [ st.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> raise Done
      | _ -> (
        match Unix.accept st.listen_fd with
        | fd, _ -> ( try handle_conn st fd with _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
          (* listening socket shut down or unusable: stop *)
          raise Done)
    done
  with Done -> ()

let serve cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  let st =
    {
      cfg;
      listen_fd;
      session = Session.create ?byte_budget:cfg.byte_budget ();
      stop = Atomic.make false;
      served = Atomic.make 0;
      audit_m = Mutex.create ();
    }
  in
  let extra = max 0 (cfg.workers - 1) in
  let workers = List.init extra (fun _ -> Domain.spawn (fun () -> accept_loop st)) in
  accept_loop st;
  List.iter Domain.join workers;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
