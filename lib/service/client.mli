(** Client side of the daemon protocol: connect to the Unix-domain
    socket, send one compact JSON request per line, read one response
    per line.

    Everything returns [result] — a missing socket, a dead server or a
    garbled reply is an [Error] with a human-readable message, never an
    exception, because the CLI adapter turns it straight into an exit-2
    diagnostic. *)

type t

val connect : ?wait_seconds:float -> string -> (t, string) result
(** Connect to the socket path.  [wait_seconds] retries (50 ms apart)
    while the socket is missing or refusing — the "daemon still
    starting" window; default [0.] fails immediately. *)

val close : t -> unit

val rpc : t -> Request.t -> (Response.t, string) result
(** Send one request, block for its response. *)

val rpc_line : t -> string -> (string, string) result
(** Raw variant: send an arbitrary line, return the raw response line.
    For protocol tests and [olfu client --raw]. *)

val request :
  ?wait_seconds:float -> socket:string -> Request.t -> (Response.t, string) result
(** One-shot: connect, {!rpc}, close. *)
