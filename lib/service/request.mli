(** Typed requests of the analysis service.

    One request value describes one unit of work — which netlist, which
    flow knobs, which operation, which rendering — independently of how
    it reaches the dispatcher: the one-shot CLI builds a value directly,
    the daemon decodes one from a line of JSON.  Both paths execute the
    same {!Service.execute}, which is what makes the CLI and the daemon
    byte-identical for the same request.

    The wire encoding is one compact JSON object per line on the
    in-house {!Olfu_obs.Json} AST.  Decoding is tolerant: every field
    except ["op"] has a default, unknown fields are ignored, and a
    malformed request yields [Error _] (a structured [Bad_input]
    response at the server), never an exception. *)

type target =
  | Config of string  (** a generated SoC configuration, by name *)
  | File of string  (** a structural-Verilog netlist on the server *)

type fmt = Text | Json | Summary  (** the CLI's [--format] choices *)

type fail_on = Never | Fail_on of Olfu_lint.Rule.severity

(** Operation-specific options.  Field defaults mirror the CLI flags. *)
type op =
  | Analyze of { paper : bool }
  | Lint of {
      waivers : string option;  (** waiver file path, server-side *)
      baseline : string option;  (** baseline file path, server-side *)
      disabled : string list;  (** rule codes to disable *)
      software : bool;  (** enable SW dataflow rules *)
      invariants : bool;  (** enable INV invariant rules *)
      fail_on : fail_on;
    }
  | Implic of { learn_depth : int; learn_budget : int; invariants : bool }
  | Absint of { programs : string list; asm : string option }
  | Invar of { k : int; no_prove : bool }
  | Safety of { window : int; seu_limit : int }
  | Slice of { dot : bool }
  | Coverage of { sample : int }

type run = {
  target : target;
  ff_mode : Olfu_atpg.Ternary.ff_mode;
  jobs : int;
  implic : bool;
  fmt : fmt;
  op : op;
}

type body =
  | Ping  (** liveness probe; answered without touching the session *)
  | Stats  (** session-cache and server counters *)
  | Shutdown  (** reply, then stop accepting and drain *)
  | Run of run

type t = { id : int; body : body }
(** [id] is echoed verbatim in the response so a client multiplexing
    requests on one connection can match replies. *)

val op_name : op -> string
(** The subcommand name: ["analyze"], ["lint"], ... *)

val params_json : op -> Olfu_obs.Json.t
(** The op's parameter object (always complete), as sent on the wire —
    also used for manifest [config] echo and {!fingerprint}. *)

val default_run : run
(** [Analyze { paper = false }] of config ["tcore32"], steady-state,
    [jobs = 1], implications on, text format — the defaults every
    decoded field falls back to. *)

val run : ?id:int -> ?fmt:fmt -> ?jobs:int -> ?ff_mode:Olfu_atpg.Ternary.ff_mode -> ?implic:bool -> target -> op -> t
(** Convenience constructor over {!default_run}. *)

val to_json : t -> Olfu_obs.Json.t
val of_json : Olfu_obs.Json.t -> (t, string) result

val of_string : string -> (t, string) result
(** Strict JSON parse followed by {!of_json}. *)

val to_line : t -> string
(** Compact one-line wire form (no trailing newline). *)

val fingerprint : run -> string
(** Deterministic key fragment identifying the work a run denotes,
    {e excluding} the netlist (callers prefix the netlist digest),
    [jobs] (all flows are jobs-invariant by contract) and [fmt] (a
    cached outcome carries every rendering).  Includes the flow knobs
    ([ff_mode], [implic]) and every op parameter, so two runs with equal
    prefixed fingerprints are interchangeable. *)
