(** The dispatcher: one code path behind both the one-shot CLI and the
    daemon.

    {!execute} takes a typed {!Request.t}, resolves the netlist through
    the session cache, runs (or replays from cache) the requested
    operation, and returns a {!Response.t} whose [output] field holds
    the finished rendering — exactly the bytes the CLI prints.  JSON
    renderings are deterministic (no wall-clock fields; timing lives in
    the response envelope), so a daemon answer is byte-identical to a
    one-shot run of the same request.

    Failures of the {e request} — unknown config, unreadable netlist or
    waiver file, unknown program name — come back as a [Bad_input]
    response, never as an exception: a daemon must survive any line a
    client sends. *)

(** Observability by-products of one execution, for the caller's
    manifest ([--manifest] in the CLI, the audit log in the daemon).
    Never serialized to the client. *)
type meta = {
  steps : Olfu_obs.Manifest.step list;
      (** flow step attributions; empty on a cache hit *)
  prep : (string * float) list;
      (** named setup phases, including a ["service"] entry covering
          render and dispatch time so steps + prep still account for the
          response's wall time *)
  extras : (string * Olfu_obs.Json.t) list;  (** manifest top-level *)
  aux : (string * string) list;
      (** side artifacts from the outcome: ["dot"], ["baseline"], ... *)
}

val empty_meta : meta

val soc_of_name : string -> Olfu_soc.Soc.config option
(** ["tcore32"], ["tcore32_dft"], ["tcore16"]. *)

val config_fields : Request.run -> (string * Olfu_obs.Json.t) list
(** Manifest [config] fields describing a run request: the flow knobs,
    the target, the op name and its parameter object. *)

val execute :
  Session.t -> ?sink:Olfu_obs.Trace.sink -> Request.t -> Response.t * meta
(** Serve one request.  [sink] receives the engines' spans and counters
    when recording (cache hits record nothing — no engine runs).
    Control requests ([Ping]/[Stats]/[Shutdown]) are answered locally;
    acting on [Shutdown] is the server's business. *)
