module J = Olfu_obs.Json
module Rule = Olfu_lint.Rule

type target = Config of string | File of string
type fmt = Text | Json | Summary
type fail_on = Never | Fail_on of Rule.severity

type op =
  | Analyze of { paper : bool }
  | Lint of {
      waivers : string option;
      baseline : string option;
      disabled : string list;
      software : bool;
      invariants : bool;
      fail_on : fail_on;
    }
  | Implic of { learn_depth : int; learn_budget : int; invariants : bool }
  | Absint of { programs : string list; asm : string option }
  | Invar of { k : int; no_prove : bool }
  | Safety of { window : int; seu_limit : int }
  | Slice of { dot : bool }
  | Coverage of { sample : int }

type run = {
  target : target;
  ff_mode : Olfu_atpg.Ternary.ff_mode;
  jobs : int;
  implic : bool;
  fmt : fmt;
  op : op;
}

type body = Ping | Stats | Shutdown | Run of run
type t = { id : int; body : body }

let op_name = function
  | Analyze _ -> "analyze"
  | Lint _ -> "lint"
  | Implic _ -> "implic"
  | Absint _ -> "absint"
  | Invar _ -> "invar"
  | Safety _ -> "safety"
  | Slice _ -> "slice"
  | Coverage _ -> "coverage"

let default_run =
  {
    target = Config "tcore32";
    ff_mode = Olfu_atpg.Ternary.Steady_state;
    jobs = 1;
    implic = true;
    fmt = Text;
    op = Analyze { paper = false };
  }

let run ?(id = 0) ?(fmt = Text) ?(jobs = 1) ?ff_mode ?(implic = true) target
    op =
  let ff_mode =
    match ff_mode with
    | Some m -> m
    | None -> Olfu_atpg.Ternary.Steady_state
  in
  { id; body = Run { target; ff_mode; jobs; implic; fmt; op } }

(* -- encoding ----------------------------------------------------- *)

let fmt_name = function Text -> "text" | Json -> "json" | Summary -> "summary"

let fmt_of_name = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "summary" -> Some Summary
  | _ -> None

let fail_on_name = function
  | Never -> "never"
  | Fail_on s -> Rule.severity_name s

let fail_on_of_name = function
  | "never" -> Some Never
  | s -> Option.map (fun s -> Fail_on s) (Rule.severity_of_name s)

let target_json = function
  | Config s -> J.Obj [ ("config", J.Str s) ]
  | File s -> J.Obj [ ("file", J.Str s) ]

let opt_str = function None -> J.Null | Some s -> J.Str s
let str_list l = J.List (List.map (fun s -> J.Str s) l)

(* The op's parameter object: always complete (every field present) so
   the wire form is self-describing and [fingerprint] is stable. *)
let op_params = function
  | Analyze { paper } -> [ ("paper", J.Bool paper) ]
  | Lint { waivers; baseline; disabled; software; invariants; fail_on } ->
    [
      ("waivers", opt_str waivers);
      ("baseline", opt_str baseline);
      ("disabled", str_list disabled);
      ("software", J.Bool software);
      ("invariants", J.Bool invariants);
      ("fail_on", J.Str (fail_on_name fail_on));
    ]
  | Implic { learn_depth; learn_budget; invariants } ->
    [
      ("learn_depth", J.Int learn_depth);
      ("learn_budget", J.Int learn_budget);
      ("invariants", J.Bool invariants);
    ]
  | Absint { programs; asm } ->
    [ ("programs", str_list programs); ("asm", opt_str asm) ]
  | Invar { k; no_prove } ->
    [ ("k", J.Int k); ("no_prove", J.Bool no_prove) ]
  | Safety { window; seu_limit } ->
    [ ("window", J.Int window); ("seu_limit", J.Int seu_limit) ]
  | Slice { dot } -> [ ("dot", J.Bool dot) ]
  | Coverage { sample } -> [ ("sample", J.Int sample) ]

let params_json op = J.Obj (op_params op)

let to_json t =
  match t.body with
  | Ping -> J.Obj [ ("id", J.Int t.id); ("op", J.Str "ping") ]
  | Stats -> J.Obj [ ("id", J.Int t.id); ("op", J.Str "stats") ]
  | Shutdown -> J.Obj [ ("id", J.Int t.id); ("op", J.Str "shutdown") ]
  | Run r ->
    J.Obj
      [
        ("id", J.Int t.id);
        ("op", J.Str (op_name r.op));
        ("target", target_json r.target);
        ("ff_mode", J.Str (Olfu.Run_config.ff_mode_name r.ff_mode));
        ("jobs", J.Int r.jobs);
        ("implic", J.Bool r.implic);
        ("format", J.Str (fmt_name r.fmt));
        ("params", J.Obj (op_params r.op));
      ]

(* -- decoding ------------------------------------------------------ *)

(* Tolerant about absence, strict about nonsense: a missing field takes
   the CLI default, an unknown field is ignored, but a field that is
   present with an unusable value is an error — silently falling back
   would run the wrong analysis for a typo'd request. *)

exception Bad of string

let badf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt
let mem k j = J.member k j

let get_bool ~default k j =
  match mem k j with
  | None | Some J.Null -> default
  | Some (J.Bool b) -> b
  | Some _ -> badf "field %S must be a boolean" k

let get_int ~default k j =
  match mem k j with
  | None | Some J.Null -> default
  | Some v -> (
    match J.to_int_opt v with
    | Some i -> i
    | None -> badf "field %S must be an integer" k)

let get_str k j =
  match mem k j with
  | None | Some J.Null -> None
  | Some v -> (
    match J.to_string_opt v with
    | Some _ as s -> s
    | None -> badf "field %S must be a string" k)

let get_str_opt ~default k j =
  match mem k j with
  | None -> default
  | Some J.Null -> None
  | Some (J.Str s) -> Some s
  | Some _ -> badf "field %S must be a string or null" k

let get_str_list ~default k j =
  match mem k j with
  | None | Some J.Null -> default
  | Some v -> (
    match J.to_list_opt v with
    | None -> badf "field %S must be a list of strings" k
    | Some l ->
      List.map
        (function
          | J.Str s -> s
          | _ -> badf "field %S must be a list of strings" k)
        l)

let op_of_json name params =
  match name with
  | "analyze" -> Ok (Analyze { paper = get_bool ~default:false "paper" params })
  | "lint" ->
    let fail_on =
      match get_str "fail_on" params with
      | None -> Fail_on Rule.Error (* the CLI's --fail-on default *)
      | Some s -> (
        match fail_on_of_name s with
        | Some f -> f
        | None -> badf "unknown fail_on severity %S" s)
    in
    Ok
      (Lint
         {
           waivers = get_str_opt ~default:None "waivers" params;
           baseline = get_str_opt ~default:None "baseline" params;
           disabled = get_str_list ~default:[] "disabled" params;
           software = get_bool ~default:false "software" params;
           invariants = get_bool ~default:false "invariants" params;
           fail_on;
         })
  | "implic" ->
    Ok
      (Implic
         {
           learn_depth = get_int ~default:2 "learn_depth" params;
           learn_budget = get_int ~default:200_000 "learn_budget" params;
           invariants = get_bool ~default:false "invariants" params;
         })
  | "absint" ->
    Ok
      (Absint
         {
           programs = get_str_list ~default:[] "programs" params;
           asm = get_str_opt ~default:None "asm" params;
         })
  | "invar" ->
    Ok
      (Invar
         {
           k = get_int ~default:1 "k" params;
           no_prove = get_bool ~default:false "no_prove" params;
         })
  | "safety" ->
    Ok
      (Safety
         {
           window = get_int ~default:4 "window" params;
           seu_limit = get_int ~default:64 "seu_limit" params;
         })
  | "slice" -> Ok (Slice { dot = get_bool ~default:false "dot" params })
  | "coverage" ->
    Ok (Coverage { sample = get_int ~default:1000 "sample" params })
  | other -> Error (Printf.sprintf "unknown op %S" other)

let of_json j =
  match j with
  | J.Obj _ -> (
    try
      let id = get_int ~default:0 "id" j in
      match get_str "op" j with
      | None -> Error "missing \"op\" field"
      | Some "ping" -> Ok { id; body = Ping }
      | Some "stats" -> Ok { id; body = Stats }
      | Some "shutdown" -> Ok { id; body = Shutdown }
      | Some name -> (
        let params =
          match mem "params" j with
          | None | Some J.Null -> J.Obj []
          | Some (J.Obj _ as p) -> p
          | Some _ -> badf "field \"params\" must be an object"
        in
        match op_of_json name params with
        | Error _ as e -> e
        | Ok op ->
          let target =
            match mem "target" j with
            | None | Some J.Null -> default_run.target
            | Some (J.Obj _ as t) -> (
              match get_str "config" t with
              | Some c -> Config c
              | None -> (
                match get_str "file" t with
                | Some f -> File f
                | None ->
                  badf "field \"target\" must carry \"config\" or \"file\""))
            | Some (J.Str c) -> Config c
            | Some _ -> badf "field \"target\" must be an object or string"
          in
          let ff_mode =
            match get_str "ff_mode" j with
            | None -> default_run.ff_mode
            | Some s -> (
              match Olfu.Run_config.ff_mode_of_string s with
              | Some m -> m
              | None -> badf "unknown ff_mode %S" s)
          in
          let fmt =
            match get_str "format" j with
            | None -> default_run.fmt
            | Some s -> (
              match fmt_of_name s with
              | Some f -> f
              | None -> badf "unknown format %S" s)
          in
          Ok
            {
              id;
              body =
                Run
                  {
                    target;
                    ff_mode;
                    jobs = get_int ~default:default_run.jobs "jobs" j;
                    implic = get_bool ~default:default_run.implic "implic" j;
                    fmt;
                    op;
                  };
            })
    with Bad msg -> Error msg)
  | _ -> Error "request must be a JSON object"

let of_string s =
  match J.parse s with
  | Error e -> Error ("parse error: " ^ e)
  | Ok j -> of_json j

let to_line t = J.to_string (to_json t)

let fingerprint r =
  Printf.sprintf "%s/%s/%s/%s" (op_name r.op)
    (Olfu.Run_config.ff_mode_name r.ff_mode)
    (if r.implic then "implic" else "noimplic")
    (J.to_string (J.Obj (op_params r.op)))
