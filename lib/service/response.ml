module J = Olfu_obs.Json

type status = Success | Findings | Bad_input

let exit_code = function Success -> 0 | Findings -> 1 | Bad_input -> 2

let status_of_code = function
  | 0 -> Some Success
  | 1 -> Some Findings
  | 2 -> Some Bad_input
  | _ -> None

type t = {
  id : int;
  status : status;
  cache_hit : bool;
  seconds : float;
  output : string;
  error : string option;
}

let make ?(cache_hit = false) ?(seconds = 0.) ?error ~id ~status output =
  { id; status; cache_hit; seconds; output; error }

let fail ~id msg = make ~id ~status:Bad_input ~error:msg ""

let to_json t =
  J.Obj
    [
      ("id", J.Int t.id);
      ("status", J.Int (exit_code t.status));
      ("cache_hit", J.Bool t.cache_hit);
      ("seconds", J.Float t.seconds);
      ("output", J.Str t.output);
      ("error", match t.error with None -> J.Null | Some e -> J.Str e);
    ]

let of_json j =
  match j with
  | J.Obj _ -> (
    let id =
      match Option.bind (J.member "id" j) J.to_int_opt with
      | Some i -> i
      | None -> 0
    in
    let status =
      match
        Option.bind
          (Option.bind (J.member "status" j) J.to_int_opt)
          status_of_code
      with
      | Some s -> s
      | None -> Bad_input
    in
    let cache_hit =
      match J.member "cache_hit" j with Some (J.Bool b) -> b | _ -> false
    in
    let seconds =
      match Option.bind (J.member "seconds" j) J.to_float_opt with
      | Some s -> s
      | None -> 0.
    in
    match Option.bind (J.member "output" j) J.to_string_opt with
    | None -> Error "missing \"output\" field"
    | Some output ->
      let error =
        match J.member "error" j with Some (J.Str e) -> Some e | _ -> None
      in
      Ok { id; status; cache_hit; seconds; output; error })
  | _ -> Error "response must be a JSON object"

let of_string s =
  match J.parse s with
  | Error e -> Error ("parse error: " ^ e)
  | Ok j -> of_json j

let to_line t = J.to_string (to_json t)
