type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(wait_seconds = 0.) path =
  let deadline = Unix.gettimeofday () +. wait_seconds in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.05;
        attempt ()
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path
           (Unix.error_message e))
  in
  attempt ()

let close t =
  (try close_out t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc_line t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc
  with
  | () -> (
    match input_line t.ic with
    | line -> Ok line
    | exception End_of_file -> Error "server closed the connection"
    | exception Sys_error e -> Error e)
  | exception Sys_error e -> Error e

let rpc t req =
  match rpc_line t (Request.to_line req) with
  | Error _ as e -> e
  | Ok line -> (
    match Response.of_string line with
    | Ok resp -> Ok resp
    | Error e -> Error ("bad response: " ^ e))

let request ?wait_seconds ~socket req =
  match connect ?wait_seconds socket with
  | Error _ as e -> e
  | Ok t ->
    Fun.protect ~finally:(fun () -> close t) (fun () -> rpc t req)
