(** Per-daemon artifact cache.

    A session owns everything the service remembers between requests:
    loaded netlists (with their missions and content digests), flow
    reports, and finished per-operation outcomes.  Entries are keyed by
    strings built from the netlist content digest
    ({!Olfu_netlist.Analysis.digest}) plus an operation fingerprint
    ({!Request.fingerprint}), so a cache hit is sound across requests,
    connections and clients — two keys collide only when the work is
    interchangeable.

    Eviction is LRU under a byte budget measured with
    [Obj.reachable_words] at insertion time.  The most recently added
    entry is never evicted (a single oversized artifact still completes
    its request; the budget re-asserts itself on the next insert).

    All operations are thread-safe (one mutex around the table);
    {!memo} runs its build function {e outside} the lock so concurrent
    requests never serialize behind each other's engines.  Duplicate
    concurrent builds of the same key are possible and benign — every
    flow is deterministic, so whichever result publishes first wins and
    the values are interchangeable. *)

type outcome = {
  json : string;
      (** [--format json] rendering; deterministic — no wall-clock
          fields, so a cache hit is byte-identical to a fresh run *)
  text : string;  (** [--format text] rendering *)
  summary : string;  (** [--format summary] rendering *)
  status : Response.status;
  aux : (string * string) list;
      (** side artifacts that are not part of any rendering: a DOT
          graph, baseline fingerprint lines *)
}

type loaded = {
  nl : Olfu_netlist.Netlist.t;
  mission : Olfu.Mission.t;
  digest : string;  (** {!Olfu_netlist.Analysis.digest} of [nl] *)
  cfg : Olfu_soc.Soc.config option;  (** [None] for file targets *)
}

type value =
  | Loaded of loaded
  | Flow of Olfu.Flow.report
  | Outcome of outcome

type stats = {
  entries : int;
  bytes : int;  (** sum of the sizes measured at insertion *)
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
}

type t

val create : ?byte_budget:int -> unit -> t
(** Default budget: 1 GiB. *)

val find : t -> string -> value option
(** Counts as a hit/miss and refreshes recency on hit. *)

val add : t -> string -> value -> unit
(** Insert (replacing any previous binding), then evict
    least-recently-used entries — never the one just added — until the
    budget holds again. *)

val memo : t -> string -> (unit -> value) -> value * bool
(** [memo t key build] is [find]-or-[build]-and-[add]; the boolean is
    [true] on a cache hit.  [build] runs outside the session lock. *)

val stats : t -> stats
val stats_json : stats -> Olfu_obs.Json.t
