module J = Olfu_obs.Json

type outcome = {
  json : string;
  text : string;
  summary : string;
  status : Response.status;
  aux : (string * string) list;
}

type loaded = {
  nl : Olfu_netlist.Netlist.t;
  mission : Olfu.Mission.t;
  digest : string;
  cfg : Olfu_soc.Soc.config option;
}

type value = Loaded of loaded | Flow of Olfu.Flow.report | Outcome of outcome

type stats = {
  entries : int;
  bytes : int;
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
}

type entry = { value : value; bytes : int; mutable tick : int }

type t = {
  tbl : (string, entry) Hashtbl.t;
  budget : int;
  m : Mutex.t;
  mutable used : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(byte_budget = 1 lsl 30) () =
  {
    tbl = Hashtbl.create 64;
    budget = byte_budget;
    m = Mutex.create ();
    used = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Size at insertion: the whole reachable graph of the value.  Shared
   substructure (a [Loaded] netlist also reachable from a [Flow] report)
   is counted once per entry, so [used] over-approximates the true
   footprint — the safe direction for a budget. *)
let size_of value = Obj.reachable_words (Obj.repr value) * (Sys.word_size / 8)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e ->
        t.clock <- t.clock + 1;
        e.tick <- t.clock;
        t.hits <- t.hits + 1;
        Some e.value)

let evict_locked t ~keep =
  let exception Done in
  try
    while t.used > t.budget && Hashtbl.length t.tbl > 1 do
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            if String.equal k keep then acc
            else
              match acc with
              | Some (_, e') when e'.tick <= e.tick -> acc
              | _ -> Some (k, e))
          t.tbl None
      in
      match victim with
      | None -> raise Done (* only the protected entry remains *)
      | Some (k, e) ->
        Hashtbl.remove t.tbl k;
        t.used <- t.used - e.bytes;
        t.evictions <- t.evictions + 1
    done
  with Done -> ()

let add t key value =
  let bytes = size_of value in
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some old ->
        t.used <- t.used - old.bytes;
        Hashtbl.remove t.tbl key
      | None -> ());
      t.clock <- t.clock + 1;
      Hashtbl.replace t.tbl key { value; bytes; tick = t.clock };
      t.used <- t.used + bytes;
      evict_locked t ~keep:key)

let memo t key build =
  match find t key with
  | Some v -> (v, true)
  | None ->
    let v = build () in
    add t key v;
    (v, false)

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        bytes = t.used;
        budget = t.budget;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })

let stats_json s =
  J.Obj
    [
      ("entries", J.Int s.entries);
      ("bytes", J.Int s.bytes);
      ("budget", J.Int s.budget);
      ("hits", J.Int s.hits);
      ("misses", J.Int s.misses);
      ("evictions", J.Int s.evictions);
    ]
