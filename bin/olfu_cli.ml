(* olfu — on-line functionally untestable fault identification.

   Subcommands mirror the paper's flow: generate the case-study SoC, run
   the identification flow (Table I), trace scan chains, analyze memory
   maps, compute the Fig. 1 category sets, and grade the SBST suite. *)

open Cmdliner
open Olfu_netlist

let config_of_name = function
  | "tcore32" -> Ok Olfu_soc.Soc.tcore32
  | "tcore32_dft" -> Ok Olfu_soc.Soc.tcore32_dft
  | "tcore16" -> Ok Olfu_soc.Soc.tcore16
  | s ->
    Error
      (`Msg
        (Printf.sprintf "unknown config %S (tcore32|tcore32_dft|tcore16)" s))

let config_conv =
  Arg.conv
    ( (fun s -> config_of_name s),
      fun ppf c -> Format.pp_print_string ppf c.Olfu_soc.Soc.name )

let config_arg =
  Arg.(
    value
    & opt config_conv Olfu_soc.Soc.tcore32
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"SoC configuration: tcore32 or tcore16.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:
          "Structural-Verilog netlist to analyze instead of a generated \
           configuration (roles read from //@role annotations).")

let ff_mode_arg =
  let parse = function
    | "steady" -> Ok Olfu_atpg.Ternary.Steady_state
    | "join" -> Ok Olfu_atpg.Ternary.Reset_join
    | "cut" -> Ok Olfu_atpg.Ternary.Cut
    | s -> Error (`Msg (Printf.sprintf "unknown ff-mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Olfu_atpg.Ternary.Steady_state -> "steady"
      | Olfu_atpg.Ternary.Reset_join -> "join"
      | Olfu_atpg.Ternary.Cut -> "cut")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Olfu_atpg.Ternary.Steady_state
    & info [ "ff-mode" ] ~docv:"MODE"
        ~doc:
          "Sequential constant propagation: steady (mission reading, \
           default), join (sound always-constant), cut (per-block).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the fault-simulation and classification \
           engines (results are identical for any value).  Defaults to \
           $(b,OLFU_JOBS), or 1.")

let jobs_of = function
  | Some j -> j
  | None -> Olfu_pool.Pool.default_jobs ()

let load_netlist cfg = function
  | Some path -> (Olfu_verilog.Elaborate.netlist_of_file path, cfg)
  | None -> (Olfu_soc.Soc.generate cfg, cfg)

let mission_of cfg nl = function
  | None -> Olfu.Mission.of_soc cfg nl
  | Some _ ->
    (* file input: derive the mission from the embedded roles and assume
       the paper's memory map *)
    Olfu.Mission.of_roles
      ~memmap:(Olfu_manip.Memmap.paper_case_study ())
      ~address_width:32 nl

(* --- generate --- *)

let generate cfg out =
  let nl = Olfu_soc.Soc.generate cfg in
  Format.printf "%s: %a@." cfg.Olfu_soc.Soc.name Netlist.pp_summary nl;
  match out with
  | None -> `Ok ()
  | Some path ->
    Olfu_verilog.Emit.to_file ~module_name:cfg.Olfu_soc.Soc.name nl path;
    Format.printf "wrote %s@." path;
    `Ok ()

let generate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write Verilog here.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the tcore SoC netlist (Verilog).")
    Term.(ret (const generate $ config_arg $ out))

(* --- analyze --- *)

module C = Olfu_cli_common

let analyze cfg file ff_mode paper jobs format trace manifest =
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with ff_mode; jobs = jobs_of jobs; trace = sink }
  in
  let t0 = Unix.gettimeofday () in
  let report = Olfu.Flow.run rc nl mission in
  let wall = Unix.gettimeofday () -. t0 in
  C.emit format
    ~text:(fun () ->
      Format.printf "%a@." Netlist.pp_summary nl;
      Format.printf "@.%a@." (Olfu.Flow.pp_table1 ~paper) report;
      Format.printf "@.%a@." Olfu_fault.Flist.pp_summary
        report.Olfu.Flow.flist)
    ~json:(fun () -> C.print_json (C.flow_json report))
    ();
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~steps:(C.manifest_steps report) ~prep:report.Olfu.Flow.prep
    ~extra:
      [
        ("universe", Olfu_obs.Json.Int report.Olfu.Flow.universe);
        ("collapsed", Olfu_obs.Json.Int report.Olfu.Flow.collapsed);
        ( "dominance_pruned",
          Olfu_obs.Json.Int report.Olfu.Flow.dominance_pruned );
      ]
    ~wall_seconds:wall sink;
  `Ok ()

let analyze_cmd =
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Show the paper's Table I numbers alongside.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the on-line untestable fault identification flow (Table I).")
    Term.(
      ret (const analyze $ config_arg $ file_arg $ ff_mode_arg $ paper
           $ jobs_arg $ C.format_arg () $ C.trace_arg $ C.manifest_arg))

(* --- tdf --- *)

let tdf cfg file ff_mode jobs trace manifest =
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with ff_mode; jobs = jobs_of jobs; trace = sink }
  in
  let t0 = Unix.gettimeofday () in
  let r = Olfu.Tdf_flow.run rc nl mission in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Olfu.Tdf_flow.pp r;
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let tdf_cmd =
  Cmd.v
    (Cmd.info "tdf"
       ~doc:
         "Replay the identification flow for transition-delay faults (the \
          paper's announced fault-model extension).")
    Term.(
      ret
        (const tdf $ config_arg $ file_arg $ ff_mode_arg $ jobs_arg
       $ C.trace_arg $ C.manifest_arg))

(* --- trace-scan --- *)

let trace_scan cfg file =
  let nl, _ = load_netlist cfg file in
  let chains = Olfu_manip.Scan_trace.trace nl in
  if chains = [] then Format.printf "no scan chains found@."
  else
    List.iteri
      (fun i c ->
        Format.printf "chain %d: %a@." i
          (Olfu_manip.Scan_trace.pp_chain nl)
          c)
      chains;
  let faults = Olfu_manip.Scan_trace.untestable_faults nl in
  Format.printf "scan rule prunes %d faults@." (List.length faults);
  `Ok ()

let trace_scan_cmd =
  Cmd.v
    (Cmd.info "trace-scan" ~doc:"Trace scan chains and apply the scan rule.")
    Term.(ret (const trace_scan $ config_arg $ file_arg))

(* --- memmap --- *)

let memmap width regions paper =
  let regions =
    if paper || regions = [] then Olfu_manip.Memmap.paper_case_study ()
    else
      List.map
        (fun (lo, hi) -> Olfu_manip.Memmap.region ~lo ~hi ())
        regions
  in
  Format.printf "%a@." (Olfu_manip.Memmap.pp_report ~width) regions;
  `Ok ()

let memmap_cmd =
  let width =
    Arg.(
      value & opt int 32
      & info [ "w"; "width" ] ~docv:"BITS" ~doc:"Address width.")
  in
  let region_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ lo; hi ] -> (
        try Ok (int_of_string lo, int_of_string hi)
        with _ -> Error (`Msg "expected LO:HI"))
      | _ -> Error (`Msg "expected LO:HI")
    in
    Arg.conv (parse, fun ppf (lo, hi) -> Format.fprintf ppf "0x%X:0x%X" lo hi)
  in
  let regions =
    Arg.(
      value & opt_all region_conv []
      & info [ "r"; "region" ] ~docv:"LO:HI"
          ~doc:"Populated address range (repeatable; 0x prefixes accepted).")
  in
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Use the paper's flash/RAM ranges.")
  in
  Cmd.v
    (Cmd.info "memmap"
       ~doc:"Compute free and mission-constant address bits (Sec. 3.3).")
    Term.(ret (const memmap $ width $ regions $ paper))

(* --- categories --- *)

let categories cfg file ff_mode =
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let s = Olfu.Categories.compute ~ff_mode nl mission in
  Format.printf "%a@." Olfu.Categories.pp s;
  `Ok ()

let categories_cmd =
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Compute the Fig. 1 fault-category sets and their inclusions.")
    Term.(ret (const categories $ config_arg $ file_arg $ ff_mode_arg))

(* --- coverage --- *)

let coverage cfg sample jobs format trace manifest =
  let jobs = jobs_of jobs in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let sink = C.sink_for ~trace ~manifest in
  let rc = { Olfu.Run_config.default with jobs; trace = sink } in
  let t0 = Unix.gettimeofday () in
  let report = Olfu.Flow.run rc nl mission in
  if format = C.Text then
    Format.printf "%a@.@." (Olfu.Flow.pp_table1 ~paper:false) report;
  let fl = report.Olfu.Flow.flist in
  let rng = Random.State.make [| 42 |] in
  let n = Olfu_fault.Flist.size fl in
  let chosen = Hashtbl.create sample in
  while Hashtbl.length chosen < min sample n do
    Hashtbl.replace chosen (Random.State.int rng n) ()
  done;
  let idx = List.sort compare (Hashtbl.fold (fun i () a -> i :: a) chosen []) in
  let faults =
    Array.of_list (List.map (Olfu_fault.Flist.fault fl) idx)
  in
  let sub = Olfu_fault.Flist.create nl faults in
  List.iteri
    (fun k i -> Olfu_fault.Flist.set_status sub k (Olfu_fault.Flist.status fl i))
    idx;
  let summary =
    Olfu_sbst.Coverage.grade ~jobs ~trace:sink cfg nl sub
      (Olfu_sbst.Programs.suite cfg)
  in
  let wall = Unix.gettimeofday () -. t0 in
  C.emit format
    ~text:(fun () ->
      Format.printf "%a@." Olfu_sbst.Coverage.pp_summary summary)
    ~json:(fun () ->
      C.print_json
        (Olfu_obs.Json.Obj
           [
             ("flow", C.flow_json report);
             ("coverage", C.coverage_json summary);
           ]))
    ();
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~steps:(C.manifest_steps report) ~prep:report.Olfu.Flow.prep
    ~wall_seconds:wall sink;
  `Ok ()

let coverage_cmd =
  let sample =
    Arg.(
      value & opt int 1000
      & info [ "s"; "sample" ] ~docv:"N" ~doc:"Fault sample size.")
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Grade the SBST suite before/after pruning (tcore16 advised).")
    Term.(
      ret
        (const coverage $ config_arg $ sample $ jobs_arg $ C.format_arg ()
       $ C.trace_arg $ C.manifest_arg))

(* --- report --- *)

let report cfg out jobs =
  let jobs = jobs_of jobs in
  let buf = Buffer.create 4096 in
  let pf fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  pf "# OLFU report — %s@.@." cfg.Olfu_soc.Soc.name;
  pf "## Netlist@.@.```@.%a@.```@.@." Netlist.pp_summary nl;
  pf "## Mission configuration@.@.```@.%a@.```@.@." Olfu.Mission.pp mission;
  let rc = { Olfu.Run_config.default with jobs } in
  let r = Olfu.Flow.run rc nl mission in
  pf "## Identification (Table I analogue)@.@.```@.%a@.```@.@."
    (Olfu.Flow.pp_table1 ~paper:true) r;
  pf "## Fault classes@.@.```@.%a@.```@.@." Olfu_fault.Flist.pp_summary
    r.Olfu.Flow.flist;
  let cats = Olfu.Categories.compute nl mission in
  pf "## Fig. 1 categories@.@.```@.%a@.```@.@." Olfu.Categories.pp cats;
  let tdf = Olfu.Tdf_flow.run rc nl mission in
  pf "## Transition-delay extension@.@.```@.%a@.```@.@." Olfu.Tdf_flow.pp tdf;
  let lint = Olfu_lint.Lint.run nl in
  pf "## Static analysis@.@.```@.%a@.```@.@." Olfu_lint.Render.summary lint;
  let text = Buffer.contents buf in
  (match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "wrote %s@." path);
  `Ok ()

let report_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write markdown here.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full markdown report: flow, categories, TDF extension, lint.")
    Term.(ret (const report $ config_arg $ out $ jobs_arg))

(* --- lint --- *)

let lint cfg file format rules_only waivers_path baseline_path
    update_baseline fail_on disabled software invariants =
  let module L = Olfu_lint in
  if rules_only then begin
    Format.printf "%a@." L.Render.rules_catalogue L.Lint.registry;
    `Ok ()
  end
  else begin
    (* distinct exit codes: 2 = bad input, 1 = findings, 0 = clean *)
    let bad_input msg =
      Format.eprintf "olfu lint: %s@." msg;
      exit 2
    in
    let nl =
      match file with
      | Some path -> (
        try Olfu_verilog.Elaborate.netlist_of_file path
        with e -> bad_input (Printexc.to_string e))
      | None -> Olfu_soc.Soc.generate cfg
    in
    let waivers =
      match waivers_path with
      | None -> []
      | Some p -> (
        match L.Config.load_waivers p with
        | Ok w -> w
        | Error m -> bad_input m)
    in
    let baseline =
      match baseline_path with
      | Some p when Sys.file_exists p -> (
        match L.Config.load_baseline p with
        | Ok b -> b
        | Error m -> bad_input m)
      | Some _ | None -> []
    in
    let config =
      { L.Config.default with L.Config.waivers; baseline; disabled }
    in
    let sw =
      if not software then None
      else
        (* program-side facts for the SW-* rules: abstract-interpret the
           bundled SBST suite against this configuration *)
        let named =
          List.map
            (fun p ->
              ( p.Olfu_sbst.Programs.pname,
                Olfu_absint.Absint.of_program cfg p ))
            (Olfu_sbst.Programs.suite cfg)
        in
        Some
          (Olfu_absint.Absint.software_facts
             ~label:(cfg.Olfu_soc.Soc.name ^ "-suite") cfg nl named)
    in
    let inv =
      if not invariants then None
      else
        (* state-side facts for the INV-* rules: prove invariants under
           the mission hold (debug controls and scan interface at 0) *)
        let module Inv = Olfu_invar.Invar in
        let hold =
          List.concat_map
            (fun role ->
              Netlist.nodes_with_role nl role
              |> Array.to_list
              |> List.filter (fun i ->
                     Cell.equal_kind (Netlist.kind nl i) Cell.Input)
              |> List.map (fun i -> (i, false)))
            [ Netlist.Debug_control; Netlist.Scan_enable; Netlist.Scan_in ]
        in
        Some (Inv.lint_facts (Inv.run ~hold nl))
    in
    let o = L.Lint.run ~config ?software:sw ?invariants:inv nl in
    C.emit format
      ~text:(fun () -> Format.printf "%a@." L.Render.text o)
      ~summary:(fun () -> Format.printf "%a@." L.Render.summary o)
      ~json:(fun () -> Format.printf "%a" L.Render.json o)
      ();
    (match (update_baseline, baseline_path) with
    | true, Some p ->
      L.Config.save_baseline p
        (L.Config.baseline_of_findings nl o.L.Lint.findings);
      Format.printf "wrote baseline %s (%d findings)@." p
        (List.length o.L.Lint.findings)
    | true, None -> bad_input "--update-baseline requires --baseline FILE"
    | false, _ -> ());
    let fail =
      (not update_baseline)
      &&
      match fail_on with
      | `Never -> false
      | `Sev s -> L.Lint.fails ~fail_on:s o
    in
    if fail then begin
      Format.print_flush ();
      exit 1
    end;
    `Ok ()
  end

let lint_cmd =
  (* deliberately [string], not [Arg.file]: an unreadable netlist must
     reach the lint handler so it exits 2, not cmdliner's 124 *)
  let lint_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:
            "Structural-Verilog netlist to lint instead of a generated \
             configuration (roles read from //@role annotations).")
  in
  let format = C.format_arg ~summary:true () in
  let rules_only =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"List the rule catalogue and exit.")
  in
  let waivers =
    Arg.(
      value
      & opt (some string) None
      & info [ "waivers" ] ~docv:"FILE"
          ~doc:
            "Waiver file: lines of CODE NODE [reason]; NODE is an exact \
             name, a prefix ending in *, or * for any.  Unused waivers \
             are reported.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file of known-finding fingerprints to suppress; \
             create or refresh it with $(b,--update-baseline).")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Write the current live findings to the $(b,--baseline) file \
             and exit successfully.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [
               ("error", `Sev Olfu_lint.Rule.Error);
               ("warning", `Sev Olfu_lint.Rule.Warning);
               ("info", `Sev Olfu_lint.Rule.Info);
               ("never", `Never);
             ])
          (`Sev Olfu_lint.Rule.Error)
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit 1 when a finding at or above this severity survives \
             waivers and baseline: $(b,error) (default), $(b,warning), \
             $(b,info), or $(b,never).")
  in
  let disabled =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"CODE"
          ~doc:"Disable a rule code or a whole category (repeatable).")
  in
  let lint_invariants =
    Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Prove state invariants on the netlist under the mission \
             hold (debug controls and scan interface at 0) and feed the \
             proved facts to the INV-* rules.")
  in
  let software =
    Arg.(
      value & flag
      & info [ "software" ]
          ~doc:
            "Abstract-interpret the bundled SBST suite and feed the proven \
             program-side facts (constant address bits, dead code, store \
             observability) to the SW-* rules and the mission ternary \
             analysis.")
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"no finding at or above the $(b,--fail-on) level."
    :: Cmd.Exit.info 1
         ~doc:"findings at or above the $(b,--fail-on) level."
    :: Cmd.Exit.info 2
         ~doc:"bad input: unreadable netlist, waiver or baseline file."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "lint" ~exits
       ~doc:
         "Netlist static analysis: scan/shift-path integrity, reset and \
          clock domains, X and constant propagation, debug tie-off \
          preconditions, dead logic, structural metrics, SCOAP.")
    Term.(
      ret
        (const lint $ config_arg $ lint_file $ format $ rules_only $ waivers
       $ baseline $ update_baseline $ fail_on $ disabled $ software
       $ lint_invariants))

(* --- invar --- *)

let invar cfg file format jobs k no_prove trace manifest =
  let module Inv = Olfu_invar.Invar in
  let module Sc = Olfu_safety.Classify in
  let jobs = jobs_of jobs in
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let sink = C.sink_for ~trace ~manifest in
  let rc = { Olfu.Run_config.default with jobs; trace = sink } in
  let t0 = Unix.gettimeofday () in
  (* the machine the paper's on-line argument is about: mission netlist
     (debug controls tied by the flow) with the scan interface held
     functional — same machine as the safety classifier's BMC axis *)
  let flow = Olfu.Flow.run rc nl mission in
  let machine = Sc.bmc_machine flow.Olfu.Flow.mission_netlist in
  let r = Inv.run ~k ~jobs ~trace:sink ~no_prove machine in
  let wall = Unix.gettimeofday () -. t0 in
  C.emit format
    ~text:(fun () -> Format.printf "%a@." (Inv.pp machine) r)
    ~summary:(fun () ->
      C.summary_table Format.std_formatter
        ([
           ("flops", string_of_int r.Inv.total_ffs);
           ("mined", string_of_int (List.length r.Inv.mined));
           ("sim-killed", string_of_int (List.length r.Inv.killed));
           ("unproved", string_of_int (List.length r.Inv.unproved));
           ("proved", string_of_int (List.length r.Inv.proved));
           ("k", string_of_int r.Inv.k);
           ("seconds", Printf.sprintf "%.2f" r.Inv.seconds);
         ]
        @ List.map
            (fun (cls, p, rest) ->
              ("class " ^ cls, Printf.sprintf "%d proved / %d open" p rest))
            (Inv.count_by_class r)))
    ~json:(fun () ->
      let module J = Olfu_obs.Json in
      let cand_str c = Format.asprintf "%a" (Inv.pp_candidate machine) c in
      C.print_json
        (J.Obj
           [
             ("flops", J.Int r.Inv.total_ffs);
             ("mined", J.Int (List.length r.Inv.mined));
             ("killed", J.Int (List.length r.Inv.killed));
             ("unproved", J.Int (List.length r.Inv.unproved));
             ("proved", J.Int (List.length r.Inv.proved));
             ("k", J.Int r.Inv.k);
             ("seconds", J.Float r.Inv.seconds);
             ( "by_class",
               J.Obj
                 (List.map
                    (fun (cls, p, rest) ->
                      ( cls,
                        J.Obj [ ("proved", J.Int p); ("open", J.Int rest) ]
                      ))
                    (Inv.count_by_class r)) );
             ( "invariants",
               J.List
                 (List.map
                    (fun (inv : Inv.invariant) ->
                      J.Obj
                        [
                          ("class", J.Str (Inv.class_name inv.Inv.form));
                          ("form", J.Str (cand_str inv.Inv.form));
                          ("k", J.Int inv.Inv.cert.Inv.cert_k);
                          ("rounds", J.Int inv.Inv.cert.Inv.cert_rounds);
                        ])
                    r.Inv.proved) );
           ]))
    ();
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let invar_cmd =
  let k =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:"Induction depth for the strengthening-set proof.")
  in
  let no_prove =
    Arg.(
      value & flag
      & info [ "no-prove" ]
          ~doc:
            "Stop after the simulation filter: report surviving \
             candidates without proofs.  Nothing is exported downstream.")
  in
  Cmd.v
    (Cmd.info "invar"
       ~doc:
         "Mine, filter and prove sequential state invariants \
          (k-induction) on the mission machine with the scan interface \
          held functional.")
    Term.(
      ret
        (const invar $ config_arg $ file_arg
       $ C.format_arg ~summary:true () $ jobs_arg $ k $ no_prove
       $ C.trace_arg $ C.manifest_arg))

(* --- equiv --- *)

let equiv file_a file_b assume_zero =
  let a = Olfu_verilog.Elaborate.netlist_of_file file_a in
  let b = Olfu_verilog.Elaborate.netlist_of_file file_b in
  let assume =
    List.concat_map
      (fun s ->
        String.split_on_char ',' s
        |> List.filter (fun x -> x <> "")
        |> List.map (fun n -> (n, false)))
      assume_zero
  in
  (match Olfu_atpg.Equiv.check ~assume a b with
  | Olfu_atpg.Equiv.Equivalent -> Format.printf "EQUIVALENT@."
  | Olfu_atpg.Equiv.No_common_observables ->
    Format.printf "no commonly named outputs/flops to compare@."
  | Olfu_atpg.Equiv.Unknown -> Format.printf "UNKNOWN (budget exhausted)@."
  | Olfu_atpg.Equiv.Counterexample cex ->
    Format.printf "NOT equivalent; distinguishing assignment:@.";
    List.iter
      (fun (n, v) -> Format.printf "  %s = %d@." n (Bool.to_int v))
      cex);
  `Ok ()

let equiv_cmd =
  let file k doc =
    Arg.(required & pos k (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let assume =
    Arg.(
      value & opt_all string []
      & info [ "assume-zero" ] ~docv:"NAMES"
          ~doc:"Comma-separated input names assumed tied to 0.")
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"SAT equivalence check between two Verilog netlists.")
    Term.(
      ret
        (const equiv
        $ file 0 "First netlist."
        $ file 1 "Second netlist."
        $ assume))

(* --- simulate --- *)

let simulate cfg prog_name asm_file vcd_out =
  let nl = Olfu_soc.Soc.generate cfg in
  let progs = Olfu_sbst.Programs.suite cfg in
  let resolved =
    match asm_file with
    | Some path -> (
      try Ok (Filename.basename path, Olfu_sbst.Asm.assemble (Olfu_sbst.Asm.parse_file path))
      with
      | Olfu_sbst.Asm.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message)
      | Invalid_argument m -> Error m)
    | None -> (
      match
        List.find_opt (fun p -> p.Olfu_sbst.Programs.pname = prog_name) progs
      with
      | Some p ->
        Ok (p.Olfu_sbst.Programs.pname, Olfu_sbst.Programs.assemble p)
      | None ->
        let names =
          String.concat ", "
            (List.map (fun p -> p.Olfu_sbst.Programs.pname) progs)
        in
        Error (Printf.sprintf "unknown program %S (one of: %s)" prog_name names))
  in
  match resolved with
  | Error m -> `Error (false, m)
  | Ok (label, program) ->
    ignore label;
    let run = Olfu_sbst.Testbench.record cfg nl ~program in
    Format.printf "%s: %d cycles, halted=%b, %d bus writes@."
      label run.Olfu_sbst.Testbench.cycles
      run.Olfu_sbst.Testbench.halted
      (List.length run.Olfu_sbst.Testbench.writes);
    List.iteri
      (fun i (a, v) ->
        if i < 12 then Format.printf "  mem[0x%X] <- 0x%X@." a v)
      run.Olfu_sbst.Testbench.writes;
    (match vcd_out with
    | None -> ()
    | Some path ->
      (* replay while sampling a waveform *)
      let sim = Olfu_sim.Seq_sim.create ~init:Olfu_logic.Logic4.X nl in
      let vcd = Olfu_sim.Vcd.create nl in
      Array.iter
        (fun step ->
          List.iter
            (fun (i, v) -> Olfu_sim.Seq_sim.set_input sim i v)
            step.Olfu_fsim.Seq_fsim.assign;
          Olfu_sim.Seq_sim.settle sim;
          Olfu_sim.Vcd.sample vcd sim;
          Olfu_sim.Seq_sim.step sim)
        run.Olfu_sbst.Testbench.stimulus;
      Olfu_sim.Vcd.to_file ~modname:cfg.Olfu_soc.Soc.name vcd path;
      Format.printf "wrote %s@." path);
    `Ok ()

let simulate_cmd =
  let prog =
    Arg.(
      value
      & opt string "register_march"
      & info [ "p"; "program" ] ~docv:"NAME" ~doc:"Bundled SBST program.")
  in
  let asm =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "asm" ] ~docv:"FILE"
          ~doc:"Assembly source to run instead of a bundled program.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform of the run.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run an SBST program on the gate-level SoC (optional VCD).")
    Term.(ret (const simulate $ config_arg $ prog $ asm $ vcd))

(* --- absint --- *)

let absint cfg progs whole_suite asm_file format =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  (* exit codes mirror lint: 2 = bad input, 1 = unsound/degraded, 0 = ok *)
  let bad_input msg =
    Format.eprintf "olfu absint: %s@." msg;
    exit 2
  in
  let suite = P.suite cfg in
  let named =
    match asm_file with
    | Some path -> (
      try [ (Filename.basename path, A.of_items cfg (Olfu_sbst.Asm.parse_file path)) ]
      with
      | Olfu_sbst.Asm.Parse_error { line; message } ->
        bad_input (Printf.sprintf "%s:%d: %s" path line message)
      | Invalid_argument m | Sys_error m -> bad_input m)
    | None ->
      let chosen =
        if whole_suite || progs = [] then suite
        else
          List.map
            (fun name ->
              match List.find_opt (fun p -> p.P.pname = name) suite with
              | Some p -> p
              | None ->
                bad_input
                  (Printf.sprintf "unknown program %S (one of: %s)" name
                     (String.concat ", " (List.map (fun p -> p.P.pname) suite))))
            progs
      in
      List.map (fun p -> (p.P.pname, A.of_program cfg p)) chosen
  in
  let ts = List.map snd named in
  let width = cfg.Olfu_soc.Soc.xlen in
  let regions = [ cfg.Olfu_soc.Soc.rom; cfg.Olfu_soc.Soc.ram ] in
  let consts = A.constant_addr_bits ~width ts in
  let rdata = A.rdata_constant_bits ~width ts in
  let check = A.cross_check ~width ts regions in
  let never = A.never_written ts cfg.Olfu_soc.Soc.ram in
  let nl = Olfu_soc.Soc.generate cfg in
  let assume = A.netlist_assume ~width ts nl in
  let degraded = List.exists (fun t -> A.degraded t <> None) ts in
  C.emit format
    ~text:(fun () ->
      List.iter
        (fun (name, t) ->
          match A.degraded t with
          | Some msg ->
            Format.printf "%-18s %4d words  DEGRADED: %s@." name
              (A.image_length t) msg
          | None ->
            Format.printf
              "%-18s %4d words  %3d dead  %d store sites  %d passes@." name
              (A.image_length t)
              (List.length (A.dead_pcs t))
              (A.store_sites t) (A.passes t))
        named;
      let pp_bits ppf bits =
        if bits = [] then Format.fprintf ppf "none"
        else
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
            (fun ppf (bit, v) ->
              Format.fprintf ppf "%d=%d" bit (Bool.to_int v))
            ppf bits
      in
      Format.printf "constant address bits: %a@." pp_bits consts;
      Format.printf "constant rdata bits:   %a@." pp_bits rdata;
      Format.printf "netlist assumptions:   %d nodes@." (List.length assume);
      List.iter
        (fun (lo, hi) ->
          Format.printf "never-written RAM:     [0x%X, 0x%X]@." lo hi)
        never;
      if check.A.ok then Format.printf "cross-check vs memory map: OK@."
      else
        List.iter
          (fun v -> Format.printf "cross-check VIOLATION: %s@." v)
          check.A.violations)
    ~json:(fun () ->
      let module J = Olfu_obs.Json in
      let bits_json bits =
        J.List
          (List.map
             (fun (bit, v) ->
               J.Obj
                 [ ("bit", J.Int bit); ("value", J.Int (Bool.to_int v)) ])
             bits)
      in
      C.print_json
        (J.Obj
           [
             ("config", J.Str cfg.Olfu_soc.Soc.name);
             ( "programs",
               J.List
                 (List.map
                    (fun (name, t) ->
                      J.Obj
                        [
                          ("name", J.Str name);
                          ("words", J.Int (A.image_length t));
                          ("dead", J.Int (List.length (A.dead_pcs t)));
                          ("stores", J.Int (A.store_sites t));
                          ("passes", J.Int (A.passes t));
                          ( "degraded",
                            match A.degraded t with
                            | None -> J.Null
                            | Some m -> J.Str m );
                        ])
                    named) );
             ("constant_addr_bits", bits_json consts);
             ("constant_rdata_bits", bits_json rdata);
             ("assume_nodes", J.Int (List.length assume));
             ( "never_written_ram",
               J.List
                 (List.map
                    (fun (lo, hi) -> J.List [ J.Int lo; J.Int hi ])
                    never) );
             ("cross_check_ok", J.Bool check.A.ok);
             ( "violations",
               J.List (List.map (fun v -> J.Str v) check.A.violations) );
           ]))
    ~summary:(fun () ->
      let bits bs =
        if bs = [] then "none"
        else
          String.concat " "
            (List.map
               (fun (bit, v) -> Printf.sprintf "%d=%d" bit (Bool.to_int v))
               bs)
      in
      C.summary_table Format.std_formatter
        [
          ("config", cfg.Olfu_soc.Soc.name);
          ("programs", string_of_int (List.length named));
          ( "degraded",
            string_of_int
              (List.length (List.filter (fun t -> A.degraded t <> None) ts))
          );
          ("constant addr bits", bits consts);
          ("constant rdata bits", bits rdata);
          ("assume nodes", string_of_int (List.length assume));
          ( "never-written RAM",
            if never = [] then "none"
            else
              String.concat " "
                (List.map
                   (fun (lo, hi) -> Printf.sprintf "[0x%X,0x%X]" lo hi)
                   never) );
          ("cross-check", if check.A.ok then "OK" else "VIOLATED");
        ])
    ();
  if (not check.A.ok) || degraded then begin
    Format.print_flush ();
    exit 1
  end;
  `Ok ()

let absint_cmd =
  let progs =
    Arg.(
      value & opt_all string []
      & info [ "p"; "program" ] ~docv:"NAME"
          ~doc:
            "Analyze this bundled SBST program (repeatable; default: the \
             whole suite).")
  in
  let whole_suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"Analyze the whole bundled SBST suite (the default).")
  in
  let asm =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "asm" ] ~docv:"FILE"
          ~doc:"Assembly source to analyze instead of bundled programs.")
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"analysis clean and consistent with the memory map."
    :: Cmd.Exit.info 1
         ~doc:"an analysis degraded or the memory-map cross-check failed."
    :: Cmd.Exit.info 2 ~doc:"bad input: unknown program or unreadable file."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "absint" ~exits
       ~doc:
         "Abstract interpretation of the mission software: prove constant \
          address bits, dead code and never-written memory from the \
          program side, cross-checked against the memory map (Sec. 3.3).")
    Term.(
      ret
        (const absint $ config_arg $ progs $ whole_suite $ asm
       $ C.format_arg ~summary:true ()))

(* --- atpg --- *)

let atpg cfg prune jobs trace manifest =
  let nl = Olfu_soc.Soc.generate cfg in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with jobs = jobs_of jobs; trace = sink }
  in
  let t0 = Unix.gettimeofday () in
  let fl =
    if prune then begin
      let mission = Olfu.Mission.of_soc cfg nl in
      let report = Olfu.Flow.run rc nl mission in
      Format.printf "%a@.@." (Olfu.Flow.pp_table1 ~paper:false) report;
      report.Olfu.Flow.flist
    end
    else Olfu_fault.Flist.full nl
  in
  let r =
    Olfu_atpg.Atpg_flow.run
      { Olfu_atpg.Atpg_flow.default with backtrack_limit = 400; trace = sink }
      nl fl
  in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Olfu_atpg.Atpg_flow.pp r;
  Format.printf "@.%a@." Olfu_fault.Flist.pp_summary fl;
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let atpg_cmd =
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:"Run the OLFU identification flow first (the paper's point).")
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:
         "Two-phase test generation (random + PODEM) on the full-access           view; use --prune to see the effort reduction.")
    Term.(
      ret
        (const atpg $ config_arg $ prune $ jobs_arg $ C.trace_arg
       $ C.manifest_arg))

(* --- implic --- *)

let implic cfg file ff_mode format learn_depth learn_budget jobs invariants =
  let jobs = jobs_of jobs in
  let nl, _ = load_netlist cfg file in
  let module U = Olfu_atpg.Untestable in
  let module I = Olfu_atpg.Implic in
  let t = U.analyze ~ff_mode ~learn_depth ~learn_budget nl in
  (* invariant-strengthened conflict counts, reported separately from the
     plain UC row: prove state invariants on the netlist as given (all
     inputs free — unconditional facts), rebuild the analysis with them
     assumed, and count what only the strengthened database closes *)
  let ui =
    if not invariants then 0
    else
      let module Inv = Olfu_invar.Invar in
      let ir = Inv.run ~jobs nl in
      let strengthened =
        U.analyze ~learn_depth ~learn_budget
          ~consts:
            (Olfu_atpg.Ternary.run ~ff_mode ~assume:(Inv.assume_facts ir) nl)
          ~extra_edges:(Inv.edges ir) nl
      in
      List.assoc Olfu_fault.Status.Invariant
        (U.untestable_breakdown ~invariant:strengthened t nl)
  in
  let db =
    match U.implication_db t with
    | Some db -> db
    | None -> assert false (* analyze builds one unless [~implic:false] *)
  in
  let s = I.stats db in
  let scr = I.Scratch.create db in
  let conflicts = I.conflict_nets ~limit:10 db scr in
  let fl = Olfu_fault.Flist.full nl in
  let classified = U.classify ~jobs t fl in
  let count c = Olfu_fault.Flist.count_status fl (Olfu_fault.Status.Undetectable c) in
  let ut = count Olfu_fault.Status.Tied
  and ub = count Olfu_fault.Status.Blocked
  and uc = count Olfu_fault.Status.Conflict
  and us = count Olfu_fault.Status.Software in
  let tdf_un, tdf_univ = Olfu_atpg.Tdf_classify.count ~jobs t nl in
  let net_name n =
    match Netlist.name nl n with Some x -> x | None -> Printf.sprintf "n%d" n
  in
  C.emit format
    ~text:(fun () ->
      Format.printf "implication database (%d nodes)@."
        (Netlist.length nl);
      Format.printf "  literals      %8d@." s.I.literals;
      Format.printf "  direct edges  %8d@." s.I.direct_edges;
      Format.printf "  learned edges %8d  (depth %d, budget %d, spent %d)@."
        s.I.learned_edges s.I.learn_depth s.I.learn_budget s.I.learn_spent;
      Format.printf "  impossible    %8d  (build-time sweep)@."
        s.I.impossible_learned;
      Format.printf "  build time    %8.3f s@." s.I.build_seconds;
      Format.printf
        "stuck-at universe %d: untestable %d (UT %d, UB %d, UC %d)@."
        (Olfu_fault.Flist.size fl) classified ut ub uc;
      if invariants then
        Format.printf
          "invariant-strengthened: %d more conflict-untestable (UI)@." ui;
      Format.printf "transition universe %d: untestable %d@." tdf_univ tdf_un;
      if conflicts <> [] then begin
        Format.printf "conflict nets (sample):@.";
        List.iter
          (fun (n, v) ->
            Format.printf "  %-24s can never be %d@." (net_name n)
              (if v then 1 else 0))
          conflicts
      end)
    ~json:(fun () ->
      let module J = Olfu_obs.Json in
      C.print_json
        (J.Obj
           [
             ("nodes", J.Int (Netlist.length nl));
             ("literals", J.Int s.I.literals);
             ("direct_edges", J.Int s.I.direct_edges);
             ("learned_edges", J.Int s.I.learned_edges);
             ("impossible_learned", J.Int s.I.impossible_learned);
             ("learn_depth", J.Int s.I.learn_depth);
             ("learn_budget", J.Int s.I.learn_budget);
             ("learn_spent", J.Int s.I.learn_spent);
             ("build_seconds", J.Float s.I.build_seconds);
             ("universe", J.Int (Olfu_fault.Flist.size fl));
             ("untestable", J.Int classified);
             ( "by_verdict",
               J.Obj
                 [
                   ("UT", J.Int ut); ("UB", J.Int ub); ("UC", J.Int uc);
                   ("US", J.Int us); ("UI", J.Int ui);
                 ] );
             ("tdf_universe", J.Int tdf_univ);
             ("tdf_untestable", J.Int tdf_un);
             ( "conflict_nets",
               J.List
                 (List.map
                    (fun (n, v) ->
                      J.Obj
                        [
                          ("net", J.Str (net_name n));
                          ("impossible_value", J.Int (if v then 1 else 0));
                        ])
                    conflicts) );
           ]))
    ~summary:(fun () ->
      C.summary_table Format.std_formatter
        [
          ("nodes", string_of_int (Netlist.length nl));
          ("literals", string_of_int s.I.literals);
          ("direct edges", string_of_int s.I.direct_edges);
          ("learned edges", string_of_int s.I.learned_edges);
          ("impossible", string_of_int s.I.impossible_learned);
          ("build seconds", Printf.sprintf "%.3f" s.I.build_seconds);
          ("universe", string_of_int (Olfu_fault.Flist.size fl));
          ("untestable", string_of_int classified);
          ("UT", string_of_int ut);
          ("UB", string_of_int ub);
          ("UC", string_of_int uc);
          ("US", string_of_int us);
          ("UI", string_of_int ui);
          ("TDF universe", string_of_int tdf_univ);
          ("TDF untestable", string_of_int tdf_un);
        ])
    ();
  `Ok ()

let implic_cmd =
  let implic_invariants =
    Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Also prove state invariants (k-induction, all inputs free) \
             and report the conflict faults only the invariant-assumed \
             database closes as a separate UI row.")
  in
  let learn_depth =
    Arg.(
      value & opt int 2
      & info [ "learn-depth" ] ~docv:"N"
          ~doc:"Recursive-learning nesting bound (0 disables learning).")
  in
  let learn_budget =
    Arg.(
      value
      & opt int 200_000
      & info [ "learn-budget" ] ~docv:"N"
          ~doc:"Closure-visit credits for the build-time learning sweep.")
  in
  Cmd.v
    (Cmd.info "implic"
       ~doc:
         "Static implication database: build statistics, conflict nets, \
          and the untestable-fault counts it proves (FIRE-style UC \
          verdicts) on the un-manipulated netlist.")
    Term.(
      ret
        (const implic $ config_arg $ file_arg $ ff_mode_arg
       $ C.format_arg ~summary:true () $ learn_depth $ learn_budget
       $ jobs_arg $ implic_invariants))

(* --- slice --- *)

let slice cfg file format dot trace manifest =
  let module Sl = Olfu_slice.Slice in
  let module Sc = Olfu_safety.Classify in
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let sink = C.sink_for ~trace ~manifest in
  let rc = { Olfu.Run_config.default with trace = sink } in
  let t0 = Unix.gettimeofday () in
  (* same machine as every BMC-backed verdict: mission netlist with the
     scan interface held functional *)
  let flow = Olfu.Flow.run rc nl mission in
  let machine = Sc.bmc_machine flow.Olfu.Flow.mission_netlist in
  let g = Sl.get machine in
  let edge_count (e : Sl.edges) =
    let ff = Array.fold_left (fun a s -> a + Array.length s) 0 e.Sl.supports in
    let inf = Array.fold_left (fun a s -> a + Array.length s) 0 e.Sl.in_deps in
    let fo =
      Array.fold_left (fun a (_, s) -> a + Array.length s) 0 e.Sl.out_deps
    in
    (ff, inf, fo)
  in
  let variants =
    [
      ("structural", g.Sl.structural);
      ("hard", g.Sl.hard_edges);
      ("mission", g.Sl.mission_edges);
    ]
  in
  let dists =
    List.map (fun (n, e) -> (n, Sl.dist_of (Sl.backward_sizes g e))) variants
  in
  let mscc = Sl.scc g.Sl.mission_edges (Array.length g.Sl.flops) in
  let largest =
    Array.fold_left (fun a c -> max a (Array.length c)) 0 mscc.Sl.comps
  in
  (match dot with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Sl.condensation_dot g g.Sl.mission_edges);
      close_out oc);
  let wall = Unix.gettimeofday () -. t0 in
  C.emit format
    ~text:(fun () -> Format.printf "%a@." Sl.pp_stats g)
    ~summary:(fun () ->
      C.summary_table Format.std_formatter
        ([ ("flops", string_of_int (Array.length g.Sl.flops)) ]
        @ List.concat_map
            (fun (n, e) ->
              let ff, inf, fo = edge_count e in
              [ (n ^ " edges", Printf.sprintf "%d ff / %d in / %d out" ff inf fo) ])
            variants
        @ List.map
            (fun (n, d) ->
              ( n ^ " slice size",
                Printf.sprintf "med %d / p90 %d / max %d" d.Sl.median
                  d.Sl.p90 d.Sl.max_ ))
            dists
        @ [
            ("mission sccs", string_of_int (Array.length mscc.Sl.comps));
            ("largest scc", string_of_int largest);
          ]))
    ~json:(fun () ->
      let module J = Olfu_obs.Json in
      let dist_json (d : Sl.dist) =
        J.Obj
          [
            ("count", J.Int d.Sl.count);
            ("min", J.Int d.Sl.min_);
            ("max", J.Int d.Sl.max_);
            ("mean", J.Float d.Sl.mean);
            ("median", J.Int d.Sl.median);
            ("p90", J.Int d.Sl.p90);
          ]
      in
      C.print_json
        (J.Obj
           [
             ("flops", J.Int (Array.length g.Sl.flops));
             ( "edges",
               J.Obj
                 (List.map
                    (fun (n, e) ->
                      let ff, inf, fo = edge_count e in
                      ( n,
                        J.Obj
                          [
                            ("flop_flop", J.Int ff);
                            ("input_flop", J.Int inf);
                            ("flop_output", J.Int fo);
                          ] ))
                    variants) );
             ( "backward_slice_sizes",
               J.Obj (List.map (fun (n, d) -> (n, dist_json d)) dists) );
             ( "mission_scc",
               J.Obj
                 [
                   ("components", J.Int (Array.length mscc.Sl.comps));
                   ("largest", J.Int largest);
                 ] );
           ]))
    ();
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let slice_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the Graphviz condensation of the mission-severed flop \
             graph to $(docv).")
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Constant-severed cone-of-influence statistics: the flop-level \
          dependency graph under structural, hard (BMC-valid) and \
          mission (steady-state) severing, backward slice-size \
          distributions and the SCC condensation.")
    Term.(
      ret
        (const slice $ config_arg $ file_arg
       $ C.format_arg ~summary:true () $ dot $ C.trace_arg $ C.manifest_arg))

(* --- safety --- *)

let safety cfg window seu_limit jobs format trace manifest =
  let module A = Olfu_absint.Absint in
  let module P = Olfu_sbst.Programs in
  let module Sc = Olfu_safety.Classify in
  let module T = Olfu_safety.Taxonomy in
  let module Seu = Olfu_safety.Seu in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with jobs = jobs_of jobs; trace = sink }
  in
  let named =
    List.map (fun p -> (p.P.pname, A.of_program cfg p)) (P.suite cfg)
  in
  let facts =
    A.activation_facts
      ~label:(cfg.Olfu_soc.Soc.name ^ "-suite")
      cfg named
  in
  let config = { Sc.default with Sc.rc; window; seu_limit } in
  let r = Sc.run ~config ~facts nl mission in
  let seu_counts =
    [
      ("seu_masked", r.Sc.seu.Seu.masked);
      ("seu_protected", r.Sc.seu.Seu.protected_);
      ("seu_vulnerable", r.Sc.seu.Seu.vulnerable);
      ("seu_unknown", r.Sc.seu.Seu.unknown);
    ]
  in
  C.emit format
    ~text:(fun () -> Format.printf "%a@." Sc.pp r)
    ~summary:(fun () ->
      C.summary_table Format.std_formatter
        (("universe", string_of_int r.Sc.universe)
         :: List.map
              (fun (c, n) -> (T.safe_code c, string_of_int n))
              r.Sc.counts
        @ [
            ( "seu_checked",
              string_of_int (Array.length r.Sc.seu.Seu.results) );
          ]
        @ List.map (fun (k, n) -> (k, string_of_int n)) seu_counts
        @ [ ("consistent", if Sc.consistent r then "yes" else "NO") ]))
    ~json:(fun () ->
      let module J = Olfu_obs.Json in
      C.print_json
        (J.Obj
           [
             ("config", J.Str cfg.Olfu_soc.Soc.name);
             ("universe", J.Int r.Sc.universe);
             ( "classes",
               J.Obj
                 (List.map
                    (fun (c, n) -> (T.safe_code c, J.Int n))
                    r.Sc.counts) );
             ( "software_safe_by",
               J.Obj
                 (List.map
                    (fun (u, n) ->
                      ( Olfu_fault.Status.code
                          (Olfu_fault.Status.Undetectable u),
                        J.Int n ))
                    r.Sc.software_by) );
             ( "invariant_safe_by",
               J.Obj
                 (List.map
                    (fun (u, n) ->
                      ( Olfu_fault.Status.code
                          (Olfu_fault.Status.Undetectable u),
                        J.Int n ))
                    r.Sc.invariant_by) );
             ( "invariants",
               match r.Sc.invariants with
               | None -> J.Null
               | Some ir ->
                   let module Inv = Olfu_invar.Invar in
                   J.Obj
                     [
                       ("mined", J.Int (List.length ir.Inv.mined));
                       ("proved", J.Int (List.length ir.Inv.proved));
                       ("k", J.Int ir.Inv.k);
                     ] );
             ("assume_nodes", J.Int r.Sc.assume_nodes);
             ( "seu",
               J.Obj
                 (("window", J.Int r.Sc.seu.Seu.window)
                 :: ("total_ffs", J.Int r.Sc.seu.Seu.total_ffs)
                 :: ( "checked",
                      J.Int (Array.length r.Sc.seu.Seu.results) )
                 :: List.map (fun (k, n) -> (k, J.Int n)) seu_counts) );
             ( "consistency",
               J.List
                 (List.map (fun v -> J.Str v) r.Sc.consistency) );
             ("seconds", J.Float r.Sc.seconds);
             ("flow", C.flow_json r.Sc.flow);
           ]))
    ();
  let module J = Olfu_obs.Json in
  C.write_obs ~trace ~manifest
    ~config:
      (("window", J.Int window)
      :: ("seu_limit", J.Int seu_limit)
      :: C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~steps:(C.manifest_steps r.Sc.flow)
    ~prep:r.Sc.flow.Olfu.Flow.prep
    ~extra:
      (List.map
         (fun (c, n) -> (T.safe_code c, J.Int n))
         r.Sc.counts
      @ List.map (fun (k, n) -> (k, J.Int n)) seu_counts)
    ~wall_seconds:r.Sc.seconds sink;
  if Sc.consistent r then `Ok ()
  else begin
    Format.print_flush ();
    exit 1
  end

let safety_cmd =
  let window =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"K"
          ~doc:"SEU latching window in cycles (bounded-model-check depth).")
  in
  let seu_limit =
    Arg.(
      value & opt int 64
      & info [ "seu-limit" ] ~docv:"N"
          ~doc:
            "Check a deterministic, evenly strided sample of N \
             flip-flops: flop $(i,k) of the sample is sequential node \
             $(i,k*total/N) in netlist order, so the same netlist and N \
             always select the same flops.  0 (or N >= total) checks \
             every flop.")
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"taxonomy consistent."
    :: Cmd.Exit.info 1 ~doc:"a consistency audit failed."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "safety" ~exits
       ~doc:
         "Unified safe-fault taxonomy: structural and conflict \
          untestability from the identification flow, software-safe \
          faults proved from the analysed SBST suite's activation \
          constraints, and a per-flip-flop SEU masked / protected / \
          vulnerable verdict by bounded model checking.")
    Term.(
      ret
        (const safety $ config_arg $ window $ seu_limit $ jobs_arg
       $ C.format_arg ~summary:true () $ C.trace_arg $ C.manifest_arg))

let main_cmd =
  Cmd.group
    (Cmd.info "olfu" ~version:"1.0.0"
       ~doc:
         "On-line functionally untestable fault identification in embedded \
          processor cores (DATE 2013 reproduction).")
    [
      generate_cmd; analyze_cmd; tdf_cmd; trace_scan_cmd; memmap_cmd;
      categories_cmd; coverage_cmd; atpg_cmd; absint_cmd; simulate_cmd;
      equiv_cmd; lint_cmd; report_cmd; implic_cmd; invar_cmd; slice_cmd;
      safety_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
