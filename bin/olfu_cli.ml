(* olfu — on-line functionally untestable fault identification.

   Subcommands mirror the paper's flow: generate the case-study SoC, run
   the identification flow (Table I), trace scan chains, analyze memory
   maps, compute the Fig. 1 category sets, and grade the SBST suite. *)

open Cmdliner
open Olfu_netlist

let config_of_name = function
  | "tcore32" -> Ok Olfu_soc.Soc.tcore32
  | "tcore32_dft" -> Ok Olfu_soc.Soc.tcore32_dft
  | "tcore16" -> Ok Olfu_soc.Soc.tcore16
  | s ->
    Error
      (`Msg
        (Printf.sprintf "unknown config %S (tcore32|tcore32_dft|tcore16)" s))

let config_conv =
  Arg.conv
    ( (fun s -> config_of_name s),
      fun ppf c -> Format.pp_print_string ppf c.Olfu_soc.Soc.name )

let config_arg =
  Arg.(
    value
    & opt config_conv Olfu_soc.Soc.tcore32
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"SoC configuration: tcore32 or tcore16.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:
          "Structural-Verilog netlist to analyze instead of a generated \
           configuration (roles read from //@role annotations).")

let ff_mode_arg =
  let parse = function
    | "steady" -> Ok Olfu_atpg.Ternary.Steady_state
    | "join" -> Ok Olfu_atpg.Ternary.Reset_join
    | "cut" -> Ok Olfu_atpg.Ternary.Cut
    | s -> Error (`Msg (Printf.sprintf "unknown ff-mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Olfu_atpg.Ternary.Steady_state -> "steady"
      | Olfu_atpg.Ternary.Reset_join -> "join"
      | Olfu_atpg.Ternary.Cut -> "cut")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Olfu_atpg.Ternary.Steady_state
    & info [ "ff-mode" ] ~docv:"MODE"
        ~doc:
          "Sequential constant propagation: steady (mission reading, \
           default), join (sound always-constant), cut (per-block).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the fault-simulation and classification \
           engines (results are identical for any value).  Defaults to \
           $(b,OLFU_JOBS), or 1.")

let jobs_of = function
  | Some j -> j
  | None -> Olfu_pool.Pool.default_jobs ()

let load_netlist cfg = function
  | Some path -> (Olfu_verilog.Elaborate.netlist_of_file path, cfg)
  | None -> (Olfu_soc.Soc.generate cfg, cfg)

let mission_of cfg nl = function
  | None -> Olfu.Mission.of_soc cfg nl
  | Some _ ->
    (* file input: derive the mission from the embedded roles and assume
       the paper's memory map *)
    Olfu.Mission.of_roles
      ~memmap:(Olfu_manip.Memmap.paper_case_study ())
      ~address_width:32 nl

(* --- generate --- *)

let generate cfg out =
  let nl = Olfu_soc.Soc.generate cfg in
  Format.printf "%s: %a@." cfg.Olfu_soc.Soc.name Netlist.pp_summary nl;
  match out with
  | None -> `Ok ()
  | Some path ->
    Olfu_verilog.Emit.to_file ~module_name:cfg.Olfu_soc.Soc.name nl path;
    Format.printf "wrote %s@." path;
    `Ok ()

let generate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write Verilog here.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the tcore SoC netlist (Verilog).")
    Term.(ret (const generate $ config_arg $ out))

(* --- analyze --- *)

module C = Olfu_cli_common
module S = Olfu_service

(* The analysis subcommands are thin adapters: build a typed
   [S.Request.t], hand it to [C.run_request] (local session or daemon),
   print the rendering it returns.  All engine dispatch, rendering and
   caching lives in [Olfu_service.Service]. *)

let target_of cfg file =
  match file with
  | Some path -> S.Request.File path
  | None -> S.Request.Config cfg.Olfu_soc.Soc.name

let analyze cfg file ff_mode paper jobs format trace manifest connect =
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs) ~ff_mode
       (target_of cfg file)
       (S.Request.Analyze { paper }))

let analyze_cmd =
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Show the paper's Table I numbers alongside.")
  in
  Cmd.v
    (Cmd.info "analyze" ~exits:C.std_exits
       ~doc:"Run the on-line untestable fault identification flow (Table I).")
    Term.(
      ret (const analyze $ config_arg $ file_arg $ ff_mode_arg $ paper
           $ jobs_arg $ C.format_arg () $ C.trace_arg $ C.manifest_arg
           $ C.connect_arg))

(* --- tdf --- *)

let tdf cfg file ff_mode jobs trace manifest =
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with ff_mode; jobs = jobs_of jobs; trace = sink }
  in
  let t0 = Unix.gettimeofday () in
  let r = Olfu.Tdf_flow.run rc nl mission in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Olfu.Tdf_flow.pp r;
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let tdf_cmd =
  Cmd.v
    (Cmd.info "tdf"
       ~doc:
         "Replay the identification flow for transition-delay faults (the \
          paper's announced fault-model extension).")
    Term.(
      ret
        (const tdf $ config_arg $ file_arg $ ff_mode_arg $ jobs_arg
       $ C.trace_arg $ C.manifest_arg))

(* --- trace-scan --- *)

let trace_scan cfg file =
  let nl, _ = load_netlist cfg file in
  let chains = Olfu_manip.Scan_trace.trace nl in
  if chains = [] then Format.printf "no scan chains found@."
  else
    List.iteri
      (fun i c ->
        Format.printf "chain %d: %a@." i
          (Olfu_manip.Scan_trace.pp_chain nl)
          c)
      chains;
  let faults = Olfu_manip.Scan_trace.untestable_faults nl in
  Format.printf "scan rule prunes %d faults@." (List.length faults);
  `Ok ()

let trace_scan_cmd =
  Cmd.v
    (Cmd.info "trace-scan" ~doc:"Trace scan chains and apply the scan rule.")
    Term.(ret (const trace_scan $ config_arg $ file_arg))

(* --- memmap --- *)

let memmap width regions paper =
  let regions =
    if paper || regions = [] then Olfu_manip.Memmap.paper_case_study ()
    else
      List.map
        (fun (lo, hi) -> Olfu_manip.Memmap.region ~lo ~hi ())
        regions
  in
  Format.printf "%a@." (Olfu_manip.Memmap.pp_report ~width) regions;
  `Ok ()

let memmap_cmd =
  let width =
    Arg.(
      value & opt int 32
      & info [ "w"; "width" ] ~docv:"BITS" ~doc:"Address width.")
  in
  let region_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ lo; hi ] -> (
        try Ok (int_of_string lo, int_of_string hi)
        with _ -> Error (`Msg "expected LO:HI"))
      | _ -> Error (`Msg "expected LO:HI")
    in
    Arg.conv (parse, fun ppf (lo, hi) -> Format.fprintf ppf "0x%X:0x%X" lo hi)
  in
  let regions =
    Arg.(
      value & opt_all region_conv []
      & info [ "r"; "region" ] ~docv:"LO:HI"
          ~doc:"Populated address range (repeatable; 0x prefixes accepted).")
  in
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Use the paper's flash/RAM ranges.")
  in
  Cmd.v
    (Cmd.info "memmap"
       ~doc:"Compute free and mission-constant address bits (Sec. 3.3).")
    Term.(ret (const memmap $ width $ regions $ paper))

(* --- categories --- *)

let categories cfg file ff_mode =
  let nl, cfg = load_netlist cfg file in
  let mission = mission_of cfg nl file in
  let s = Olfu.Categories.compute ~ff_mode nl mission in
  Format.printf "%a@." Olfu.Categories.pp s;
  `Ok ()

let categories_cmd =
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Compute the Fig. 1 fault-category sets and their inclusions.")
    Term.(ret (const categories $ config_arg $ file_arg $ ff_mode_arg))

(* --- coverage --- *)

let coverage cfg sample jobs format trace manifest connect =
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
       (S.Request.Config cfg.Olfu_soc.Soc.name)
       (S.Request.Coverage { sample }))

let coverage_cmd =
  let sample =
    Arg.(
      value & opt int 1000
      & info [ "s"; "sample" ] ~docv:"N" ~doc:"Fault sample size.")
  in
  Cmd.v
    (Cmd.info "coverage" ~exits:C.std_exits
       ~doc:"Grade the SBST suite before/after pruning (tcore16 advised).")
    Term.(
      ret
        (const coverage $ config_arg $ sample $ jobs_arg $ C.format_arg ()
       $ C.trace_arg $ C.manifest_arg $ C.connect_arg))

(* --- report --- *)

let report cfg out jobs =
  let jobs = jobs_of jobs in
  let buf = Buffer.create 4096 in
  let pf fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  let nl = Olfu_soc.Soc.generate cfg in
  let mission = Olfu.Mission.of_soc cfg nl in
  pf "# OLFU report — %s@.@." cfg.Olfu_soc.Soc.name;
  pf "## Netlist@.@.```@.%a@.```@.@." Netlist.pp_summary nl;
  pf "## Mission configuration@.@.```@.%a@.```@.@." Olfu.Mission.pp mission;
  let rc = { Olfu.Run_config.default with jobs } in
  let r = Olfu.Flow.run rc nl mission in
  pf "## Identification (Table I analogue)@.@.```@.%a@.```@.@."
    (Olfu.Flow.pp_table1 ~paper:true) r;
  pf "## Fault classes@.@.```@.%a@.```@.@." Olfu_fault.Flist.pp_summary
    r.Olfu.Flow.flist;
  let cats = Olfu.Categories.compute nl mission in
  pf "## Fig. 1 categories@.@.```@.%a@.```@.@." Olfu.Categories.pp cats;
  let tdf = Olfu.Tdf_flow.run rc nl mission in
  pf "## Transition-delay extension@.@.```@.%a@.```@.@." Olfu.Tdf_flow.pp tdf;
  let lint = Olfu_lint.Lint.run nl in
  pf "## Static analysis@.@.```@.%a@.```@.@." Olfu_lint.Render.summary lint;
  let text = Buffer.contents buf in
  (match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "wrote %s@." path);
  `Ok ()

let report_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write markdown here.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full markdown report: flow, categories, TDF extension, lint.")
    Term.(ret (const report $ config_arg $ out $ jobs_arg))

(* --- lint --- *)

let lint cfg file format rules_only waivers_path baseline_path
    update_baseline fail_on disabled software invariants jobs trace manifest
    connect =
  let module L = Olfu_lint in
  if rules_only then begin
    Format.printf "%a@." L.Render.rules_catalogue L.Lint.registry;
    `Ok ()
  end
  else begin
    (match (update_baseline, baseline_path, connect) with
    | true, None, _ ->
      Format.eprintf "olfu lint: --update-baseline requires --baseline FILE@.";
      exit 2
    | true, Some _, Some _ ->
      Format.eprintf
        "olfu lint: --update-baseline rewrites a local file and cannot be \
         combined with --connect@.";
      exit 2
    | _ -> ());
    let fail_on =
      match fail_on with
      | `Never -> S.Request.Never
      | `Sev s -> S.Request.Fail_on s
    in
    (* the baseline rewrite consumes the service's side artifacts: the
       fingerprint lines and finding count ride along in [meta.aux] *)
    let on_meta (m : S.Service.meta) =
      match (update_baseline, baseline_path) with
      | true, Some p ->
        let lines =
          match List.assoc_opt "baseline" m.S.Service.aux with
          | Some "" | None -> []
          | Some s -> String.split_on_char '\n' s
        in
        let count =
          match List.assoc_opt "findings" m.S.Service.aux with
          | Some n -> ( try int_of_string n with Failure _ -> 0)
          | None -> 0
        in
        L.Config.save_baseline p lines;
        Format.printf "wrote baseline %s (%d findings)@." p count
      | _ -> ()
    in
    C.run_request ~on_meta ~force_ok:update_baseline ~connect ~trace
      ~manifest
      (S.Request.run
         ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
         (target_of cfg file)
         (S.Request.Lint
            {
              waivers = waivers_path;
              baseline = baseline_path;
              disabled;
              software;
              invariants;
              fail_on;
            }))
  end

let lint_cmd =
  (* deliberately [string], not [Arg.file]: an unreadable netlist must
     reach the lint handler so it exits 2, not cmdliner's 124 *)
  let lint_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:
            "Structural-Verilog netlist to lint instead of a generated \
             configuration (roles read from //@role annotations).")
  in
  let format = C.format_arg ~summary:true () in
  let rules_only =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"List the rule catalogue and exit.")
  in
  let waivers =
    Arg.(
      value
      & opt (some string) None
      & info [ "waivers" ] ~docv:"FILE"
          ~doc:
            "Waiver file: lines of CODE NODE [reason]; NODE is an exact \
             name, a prefix ending in *, or * for any.  Unused waivers \
             are reported.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file of known-finding fingerprints to suppress; \
             create or refresh it with $(b,--update-baseline).")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Write the current live findings to the $(b,--baseline) file \
             and exit successfully.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [
               ("error", `Sev Olfu_lint.Rule.Error);
               ("warning", `Sev Olfu_lint.Rule.Warning);
               ("info", `Sev Olfu_lint.Rule.Info);
               ("never", `Never);
             ])
          (`Sev Olfu_lint.Rule.Error)
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit 1 when a finding at or above this severity survives \
             waivers and baseline: $(b,error) (default), $(b,warning), \
             $(b,info), or $(b,never).")
  in
  let disabled =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"CODE"
          ~doc:"Disable a rule code or a whole category (repeatable).")
  in
  let lint_invariants =
    Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Prove state invariants on the netlist under the mission \
             hold (debug controls and scan interface at 0) and feed the \
             proved facts to the INV-* rules.")
  in
  let software =
    Arg.(
      value & flag
      & info [ "software" ]
          ~doc:
            "Abstract-interpret the bundled SBST suite and feed the proven \
             program-side facts (constant address bits, dead code, store \
             observability) to the SW-* rules and the mission ternary \
             analysis.")
  in
  Cmd.v
    (Cmd.info "lint" ~exits:C.std_exits
       ~doc:
         "Netlist static analysis: scan/shift-path integrity, reset and \
          clock domains, X and constant propagation, debug tie-off \
          preconditions, dead logic, structural metrics, SCOAP.")
    Term.(
      ret
        (const lint $ config_arg $ lint_file $ format $ rules_only $ waivers
       $ baseline $ update_baseline $ fail_on $ disabled $ software
       $ lint_invariants $ jobs_arg $ C.trace_arg $ C.manifest_arg
       $ C.connect_arg))

(* --- invar --- *)

let invar cfg file format jobs k no_prove trace manifest connect =
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
       (target_of cfg file)
       (S.Request.Invar { k; no_prove }))

let invar_cmd =
  let k =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:"Induction depth for the strengthening-set proof.")
  in
  let no_prove =
    Arg.(
      value & flag
      & info [ "no-prove" ]
          ~doc:
            "Stop after the simulation filter: report surviving \
             candidates without proofs.  Nothing is exported downstream.")
  in
  Cmd.v
    (Cmd.info "invar" ~exits:C.std_exits
       ~doc:
         "Mine, filter and prove sequential state invariants \
          (k-induction) on the mission machine with the scan interface \
          held functional.")
    Term.(
      ret
        (const invar $ config_arg $ file_arg
       $ C.format_arg ~summary:true () $ jobs_arg $ k $ no_prove
       $ C.trace_arg $ C.manifest_arg $ C.connect_arg))

(* --- equiv --- *)

let equiv file_a file_b assume_zero =
  let a = Olfu_verilog.Elaborate.netlist_of_file file_a in
  let b = Olfu_verilog.Elaborate.netlist_of_file file_b in
  let assume =
    List.concat_map
      (fun s ->
        String.split_on_char ',' s
        |> List.filter (fun x -> x <> "")
        |> List.map (fun n -> (n, false)))
      assume_zero
  in
  (match Olfu_atpg.Equiv.check ~assume a b with
  | Olfu_atpg.Equiv.Equivalent -> Format.printf "EQUIVALENT@."
  | Olfu_atpg.Equiv.No_common_observables ->
    Format.printf "no commonly named outputs/flops to compare@."
  | Olfu_atpg.Equiv.Unknown -> Format.printf "UNKNOWN (budget exhausted)@."
  | Olfu_atpg.Equiv.Counterexample cex ->
    Format.printf "NOT equivalent; distinguishing assignment:@.";
    List.iter
      (fun (n, v) -> Format.printf "  %s = %d@." n (Bool.to_int v))
      cex);
  `Ok ()

let equiv_cmd =
  let file k doc =
    Arg.(required & pos k (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let assume =
    Arg.(
      value & opt_all string []
      & info [ "assume-zero" ] ~docv:"NAMES"
          ~doc:"Comma-separated input names assumed tied to 0.")
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"SAT equivalence check between two Verilog netlists.")
    Term.(
      ret
        (const equiv
        $ file 0 "First netlist."
        $ file 1 "Second netlist."
        $ assume))

(* --- simulate --- *)

let simulate cfg prog_name asm_file vcd_out =
  let nl = Olfu_soc.Soc.generate cfg in
  let progs = Olfu_sbst.Programs.suite cfg in
  let resolved =
    match asm_file with
    | Some path -> (
      try Ok (Filename.basename path, Olfu_sbst.Asm.assemble (Olfu_sbst.Asm.parse_file path))
      with
      | Olfu_sbst.Asm.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message)
      | Invalid_argument m -> Error m)
    | None -> (
      match
        List.find_opt (fun p -> p.Olfu_sbst.Programs.pname = prog_name) progs
      with
      | Some p ->
        Ok (p.Olfu_sbst.Programs.pname, Olfu_sbst.Programs.assemble p)
      | None ->
        let names =
          String.concat ", "
            (List.map (fun p -> p.Olfu_sbst.Programs.pname) progs)
        in
        Error (Printf.sprintf "unknown program %S (one of: %s)" prog_name names))
  in
  match resolved with
  | Error m -> `Error (false, m)
  | Ok (label, program) ->
    ignore label;
    let run = Olfu_sbst.Testbench.record cfg nl ~program in
    Format.printf "%s: %d cycles, halted=%b, %d bus writes@."
      label run.Olfu_sbst.Testbench.cycles
      run.Olfu_sbst.Testbench.halted
      (List.length run.Olfu_sbst.Testbench.writes);
    List.iteri
      (fun i (a, v) ->
        if i < 12 then Format.printf "  mem[0x%X] <- 0x%X@." a v)
      run.Olfu_sbst.Testbench.writes;
    (match vcd_out with
    | None -> ()
    | Some path ->
      (* replay while sampling a waveform *)
      let sim = Olfu_sim.Seq_sim.create ~init:Olfu_logic.Logic4.X nl in
      let vcd = Olfu_sim.Vcd.create nl in
      Array.iter
        (fun step ->
          List.iter
            (fun (i, v) -> Olfu_sim.Seq_sim.set_input sim i v)
            step.Olfu_fsim.Seq_fsim.assign;
          Olfu_sim.Seq_sim.settle sim;
          Olfu_sim.Vcd.sample vcd sim;
          Olfu_sim.Seq_sim.step sim)
        run.Olfu_sbst.Testbench.stimulus;
      Olfu_sim.Vcd.to_file ~modname:cfg.Olfu_soc.Soc.name vcd path;
      Format.printf "wrote %s@." path);
    `Ok ()

let simulate_cmd =
  let prog =
    Arg.(
      value
      & opt string "register_march"
      & info [ "p"; "program" ] ~docv:"NAME" ~doc:"Bundled SBST program.")
  in
  let asm =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "asm" ] ~docv:"FILE"
          ~doc:"Assembly source to run instead of a bundled program.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform of the run.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run an SBST program on the gate-level SoC (optional VCD).")
    Term.(ret (const simulate $ config_arg $ prog $ asm $ vcd))

(* --- absint --- *)

let absint cfg progs whole_suite asm_file format jobs trace manifest connect
    =
  let programs = if whole_suite then [] else progs in
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
       (S.Request.Config cfg.Olfu_soc.Soc.name)
       (S.Request.Absint { programs; asm = asm_file }))

let absint_cmd =
  let progs =
    Arg.(
      value & opt_all string []
      & info [ "p"; "program" ] ~docv:"NAME"
          ~doc:
            "Analyze this bundled SBST program (repeatable; default: the \
             whole suite).")
  in
  let whole_suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"Analyze the whole bundled SBST suite (the default).")
  in
  let asm =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "asm" ] ~docv:"FILE"
          ~doc:"Assembly source to analyze instead of bundled programs.")
  in
  Cmd.v
    (Cmd.info "absint" ~exits:C.std_exits
       ~doc:
         "Abstract interpretation of the mission software: prove constant \
          address bits, dead code and never-written memory from the \
          program side, cross-checked against the memory map (Sec. 3.3).")
    Term.(
      ret
        (const absint $ config_arg $ progs $ whole_suite $ asm
       $ C.format_arg ~summary:true () $ jobs_arg $ C.trace_arg
       $ C.manifest_arg $ C.connect_arg))

(* --- atpg --- *)

let atpg cfg prune jobs trace manifest =
  let nl = Olfu_soc.Soc.generate cfg in
  let sink = C.sink_for ~trace ~manifest in
  let rc =
    { Olfu.Run_config.default with jobs = jobs_of jobs; trace = sink }
  in
  let t0 = Unix.gettimeofday () in
  let fl =
    if prune then begin
      let mission = Olfu.Mission.of_soc cfg nl in
      let report = Olfu.Flow.run rc nl mission in
      Format.printf "%a@.@." (Olfu.Flow.pp_table1 ~paper:false) report;
      report.Olfu.Flow.flist
    end
    else Olfu_fault.Flist.full nl
  in
  let r =
    Olfu_atpg.Atpg_flow.run
      { Olfu_atpg.Atpg_flow.default with backtrack_limit = 400; trace = sink }
      nl fl
  in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Olfu_atpg.Atpg_flow.pp r;
  Format.printf "@.%a@." Olfu_fault.Flist.pp_summary fl;
  C.write_obs ~trace ~manifest
    ~config:(C.config_fields ~soc:cfg.Olfu_soc.Soc.name rc)
    ~wall_seconds:wall sink;
  `Ok ()

let atpg_cmd =
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:"Run the OLFU identification flow first (the paper's point).")
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:
         "Two-phase test generation (random + PODEM) on the full-access           view; use --prune to see the effort reduction.")
    Term.(
      ret
        (const atpg $ config_arg $ prune $ jobs_arg $ C.trace_arg
       $ C.manifest_arg))

(* --- implic --- *)

let implic cfg file ff_mode format learn_depth learn_budget jobs invariants
    trace manifest connect =
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs) ~ff_mode
       (target_of cfg file)
       (S.Request.Implic { learn_depth; learn_budget; invariants }))

let implic_cmd =
  let implic_invariants =
    Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Also prove state invariants (k-induction, all inputs free) \
             and report the conflict faults only the invariant-assumed \
             database closes as a separate UI row.")
  in
  let learn_depth =
    Arg.(
      value & opt int 2
      & info [ "learn-depth" ] ~docv:"N"
          ~doc:"Recursive-learning nesting bound (0 disables learning).")
  in
  let learn_budget =
    Arg.(
      value
      & opt int 200_000
      & info [ "learn-budget" ] ~docv:"N"
          ~doc:"Closure-visit credits for the build-time learning sweep.")
  in
  Cmd.v
    (Cmd.info "implic" ~exits:C.std_exits
       ~doc:
         "Static implication database: build statistics, conflict nets, \
          and the untestable-fault counts it proves (FIRE-style UC \
          verdicts) on the un-manipulated netlist.")
    Term.(
      ret
        (const implic $ config_arg $ file_arg $ ff_mode_arg
       $ C.format_arg ~summary:true () $ learn_depth $ learn_budget
       $ jobs_arg $ implic_invariants $ C.trace_arg $ C.manifest_arg
       $ C.connect_arg))

(* --- slice --- *)

let slice cfg file format dot jobs trace manifest connect =
  (match (dot, connect) with
  | Some _, Some _ ->
    Format.eprintf
      "olfu slice: --dot writes a local file and cannot be combined with \
       --connect@.";
    exit 2
  | _ -> ());
  (* the DOT condensation rides along in [meta.aux] *)
  let on_meta (m : S.Service.meta) =
    match dot with
    | None -> ()
    | Some path ->
      let graph =
        match List.assoc_opt "dot" m.S.Service.aux with
        | Some g -> g
        | None -> ""
      in
      let oc = open_out path in
      output_string oc graph;
      close_out oc
  in
  C.run_request ~on_meta ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
       (target_of cfg file)
       (S.Request.Slice { dot = dot <> None }))

let slice_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the Graphviz condensation of the mission-severed flop \
             graph to $(docv).")
  in
  Cmd.v
    (Cmd.info "slice" ~exits:C.std_exits
       ~doc:
         "Constant-severed cone-of-influence statistics: the flop-level \
          dependency graph under structural, hard (BMC-valid) and \
          mission (steady-state) severing, backward slice-size \
          distributions and the SCC condensation.")
    Term.(
      ret
        (const slice $ config_arg $ file_arg
       $ C.format_arg ~summary:true () $ dot $ jobs_arg $ C.trace_arg
       $ C.manifest_arg $ C.connect_arg))

(* --- safety --- *)

let safety cfg window seu_limit jobs format trace manifest connect =
  C.run_request ~connect ~trace ~manifest
    (S.Request.run
       ~fmt:(C.fmt_of format) ~jobs:(jobs_of jobs)
       (S.Request.Config cfg.Olfu_soc.Soc.name)
       (S.Request.Safety { window; seu_limit }))

let safety_cmd =
  let window =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"K"
          ~doc:"SEU latching window in cycles (bounded-model-check depth).")
  in
  let seu_limit =
    Arg.(
      value & opt int 64
      & info [ "seu-limit" ] ~docv:"N"
          ~doc:
            "Check a deterministic, evenly strided sample of N \
             flip-flops: flop $(i,k) of the sample is sequential node \
             $(i,k*total/N) in netlist order, so the same netlist and N \
             always select the same flops.  0 (or N >= total) checks \
             every flop.")
  in
  Cmd.v
    (Cmd.info "safety" ~exits:C.std_exits
       ~doc:
         "Unified safe-fault taxonomy: structural and conflict \
          untestability from the identification flow, software-safe \
          faults proved from the analysed SBST suite's activation \
          constraints, and a per-flip-flop SEU masked / protected / \
          vulnerable verdict by bounded model checking.")
    Term.(
      ret
        (const safety $ config_arg $ window $ seu_limit $ jobs_arg
       $ C.format_arg ~summary:true () $ C.trace_arg $ C.manifest_arg
       $ C.connect_arg))

(* --- serve: the analysis daemon --- *)

let serve socket workers byte_budget_mb audit =
  if workers < 1 then `Error (false, "--workers must be at least 1")
  else begin
    let cfg =
      {
        S.Server.socket;
        workers;
        byte_budget = Option.map (fun mb -> mb * 1024 * 1024) byte_budget_mb;
        audit;
      }
    in
    Format.printf "olfu daemon listening on %s (%d worker%s)@." socket
      workers
      (if workers = 1 then "" else "s");
    S.Server.serve cfg;
    `Ok ()
  end

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCK"
          ~doc:
            "Unix-domain socket path to listen on.  An existing file at \
             this path is replaced; the socket is unlinked on clean \
             shutdown.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Accept-loop domains serving connections concurrently.  Each \
             request still parallelises internally per its own \
             $(b,--jobs).")
  in
  let byte_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "byte-budget" ] ~docv:"MB"
          ~doc:
            "Approximate cap in megabytes on cached netlists, flow \
             reports and rendered outcomes; least-recently-used entries \
             are evicted past it.  Default 1024.")
  in
  let audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:
            "Append one compact JSON manifest line per served analysis \
             request: configuration, request id, cache hit, exit \
             status, wall and per-step seconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident analysis daemon: listen on a Unix socket for \
          line-delimited JSON requests (one per line, same schema for \
          every analysis subcommand), keep parsed netlists and flow \
          reports cached across requests, and answer with the \
          byte-identical output the one-shot CLI would print.  Stop it \
          with $(b,olfu client --shutdown).")
    Term.(ret (const serve $ socket $ workers $ byte_budget $ audit))

(* --- client: talk to a running daemon --- *)

let client socket wait ping stats shutdown raw lines =
  let reqs =
    List.filter_map Fun.id
      [
        (if ping then Some (`Body S.Request.Ping) else None);
        (if stats then Some (`Body S.Request.Stats) else None);
      ]
    @ List.map (fun l -> `Line l) lines
    @ if shutdown then [ `Body S.Request.Shutdown ] else []
  in
  if reqs = [] then
    `Error (true, "nothing to send: pass --ping, --stats, --shutdown or JSON request lines")
  else
    match S.Client.connect ~wait_seconds:wait socket with
    | Error msg ->
      Format.eprintf "olfu client: %s@." msg;
      exit 2
    | Ok conn ->
      let worst = ref 0 in
      let send_one n req =
        let outcome =
          match req with
          | `Body body ->
            S.Client.rpc conn { S.Request.id = n + 1; body }
          | `Line line -> (
            match S.Client.rpc_line conn line with
            | Error _ as e -> e
            | Ok resp_line -> (
              match S.Response.of_string resp_line with
              | Ok resp -> Ok resp
              | Error e -> Error ("bad response: " ^ e)))
        in
        match outcome with
        | Error msg ->
          Format.eprintf "olfu client: %s@." msg;
          worst := max !worst 2
        | Ok resp ->
          if raw then print_endline (S.Response.to_line resp)
          else begin
            print_string resp.S.Response.output;
            match resp.S.Response.error with
            | Some m -> Format.eprintf "olfu client: %s@." m
            | None -> ()
          end;
          worst := max !worst (S.Response.exit_code resp.S.Response.status)
      in
      Fun.protect
        ~finally:(fun () -> S.Client.close conn)
        (fun () -> List.iteri send_one reqs);
      flush stdout;
      if !worst = 0 then `Ok () else exit !worst

let client_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCK"
          ~doc:"Unix-domain socket of the running $(b,olfu serve) daemon.")
  in
  let wait =
    Arg.(
      value & opt float 0.
      & info [ "wait" ] ~docv:"SEC"
          ~doc:
            "Retry the connection for up to SEC seconds while the socket \
             is missing or refusing — covers the daemon's startup \
             window.")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Send a liveness ping.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Ask for session-cache statistics: entries, bytes, budget, \
             hits, misses, evictions.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to stop and remove its socket.  Sent last.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Print each full response as one compact JSON line \
             (id, status, cache_hit, seconds, output) instead of just \
             its rendered output.")
  in
  let lines =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Raw JSON request lines to send verbatim, in order, on the \
             same connection (after --ping/--stats, before --shutdown).")
  in
  Cmd.v
    (Cmd.info "client" ~exits:C.std_exits
       ~doc:
         "Talk to a running $(b,olfu serve) daemon: liveness pings, \
          cache statistics, raw JSON analysis requests, shutdown.  For \
          everyday analysis prefer the ordinary subcommands with \
          $(b,--connect SOCK), which build the request for you.")
    Term.(
      ret
        (const client $ socket $ wait $ ping $ stats $ shutdown $ raw
       $ lines))

let main_cmd =
  Cmd.group
    (Cmd.info "olfu" ~version:"1.0.0"
       ~doc:
         "On-line functionally untestable fault identification in embedded \
          processor cores (DATE 2013 reproduction).")
    [
      generate_cmd; analyze_cmd; tdf_cmd; trace_scan_cmd; memmap_cmd;
      categories_cmd; coverage_cmd; atpg_cmd; absint_cmd; simulate_cmd;
      equiv_cmd; lint_cmd; report_cmd; implic_cmd; invar_cmd; slice_cmd;
      safety_cmd; serve_cmd; client_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
