(* Shared CLI plumbing: the --format argument with its renderer dispatch
   (previously copy-pasted with diverging JSON emitters in lint, absint
   and implic) and the --trace/--manifest observability arguments. *)

open Cmdliner
module J = Olfu_obs.Json
module Trace = Olfu_obs.Trace
module Export = Olfu_obs.Export
module Manifest = Olfu_obs.Manifest

type fmt = Text | Json | Summary

let format_arg ?(summary = false) () =
  let variants =
    [ ("text", Text); ("json", Json) ]
    @ if summary then [ ("summary", Summary) ] else []
  in
  let doc =
    if summary then
      "Output format: $(b,text) (one line per finding), $(b,json) \
       (SARIF-flavoured, with rule metadata), or $(b,summary) (per-rule \
       table)."
    else "Output format: $(b,text) or $(b,json)."
  in
  Arg.(value & opt (enum variants) Text & info [ "format" ] ~docv:"FMT" ~doc)

let print_json j =
  print_string (J.to_string ~indent:true j);
  print_newline ()

(* Aligned key/value table: the shared --format summary rendering. *)
let summary_table ppf rows =
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
  in
  List.iter (fun (k, v) -> Format.fprintf ppf "%-*s  %s@." w k v) rows

(* Renderer dispatch.  [json] prints the machine form itself (most
   subcommands build a {!J.t} and call {!print_json}; lint streams its
   SARIF renderer).  [summary] falls back to [text] when absent. *)
let emit fmt ~text ?summary ~json () =
  match fmt with
  | Text -> text ()
  | Json -> json ()
  | Summary -> ( match summary with Some f -> f () | None -> text ())

(* --- observability --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and counters and write a Chrome trace_event JSON \
           timeline here (load in chrome://tracing or Perfetto).")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Write a flat JSON run manifest here: configuration, git \
           describe, wall seconds, per-engine and per-step seconds, \
           counter totals.")

let sink_for ~trace ~manifest =
  if trace <> None || manifest <> None then Trace.create () else Trace.null

(* Write whichever observability files were requested. *)
let write_obs ~trace ~manifest ?config ?steps ?prep ?extra ~wall_seconds sink
    =
  (match trace with
  | None -> ()
  | Some path ->
    Export.to_file sink path;
    Format.printf "wrote %s@." path);
  match manifest with
  | None -> ()
  | Some path ->
    Manifest.to_file
      (Manifest.make ?config ?steps ?prep ?extra ~wall_seconds sink)
      path;
    Format.printf "wrote %s@." path

(* Manifest [config] fields for a flow run. *)
let config_fields ?soc rc =
  let base =
    match Olfu.Run_config.to_json rc with J.Obj l -> l | _ -> []
  in
  match soc with None -> base | Some name -> ("soc", J.Str name) :: base

(* --- structured renderings of the flow reports --- *)

let verdict_fields l =
  List.map
    (fun (u, n) ->
      (Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u), J.Int n))
    l

let manifest_steps (r : Olfu.Flow.report) =
  List.map
    (fun (s : Olfu.Flow.step_report) ->
      {
        Manifest.name = Olfu.Flow.source_name s.Olfu.Flow.source;
        seconds = s.Olfu.Flow.seconds;
        classified = s.Olfu.Flow.classified;
        verdicts =
          List.map
            (fun (u, n) ->
              (Olfu_fault.Status.code (Olfu_fault.Status.Undetectable u), n))
            s.Olfu.Flow.by_verdict;
      })
    r.Olfu.Flow.steps

(* Table I as structured JSON: per-step records plus the paper's
   three-row accounting. *)
let flow_json (r : Olfu.Flow.report) =
  let open Olfu.Flow in
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 r.universe) in
  let row n = J.Obj [ ("count", J.Int n); ("percent", J.Float (pct n)) ] in
  let scan = step_count r Scan in
  let ctl = step_count r Debug_control in
  let obs = step_count r Debug_observe in
  let mem = step_count r Memory in
  J.Obj
    [
      ("universe", J.Int r.universe);
      ("collapsed", J.Int r.collapsed);
      ("dominance_pruned", J.Int r.dominance_pruned);
      ( "steps",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("source", J.Str (source_name s.source));
                   ("classified", J.Int s.classified);
                   ("by_verdict", J.Obj (verdict_fields s.by_verdict));
                   ("seconds", J.Float s.seconds);
                 ])
             r.steps) );
      ( "prep",
        J.Obj (List.map (fun (k, s) -> (k, J.Float s)) r.prep) );
      ( "table1",
        J.Obj
          [
            ("scan", row scan);
            ("debug", row (ctl + obs));
            ("debug_control", J.Int ctl);
            ("debug_observe", J.Int obs);
            ("memory", row mem);
            ("total", row (paper_total r));
            ("baseline", J.Int (step_count r Baseline));
            ("grand_total", row r.total_olfu);
          ] );
      ("seconds", J.Float r.seconds);
    ]

let coverage_json (s : Olfu_sbst.Coverage.summary) =
  let open Olfu_sbst.Coverage in
  J.Obj
    [
      ( "programs",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("name", J.Str p.pname);
                   ("cycles", J.Int p.cycles);
                   ("newly_detected", J.Int p.newly_detected);
                 ])
             s.programs) );
      ("total_faults", J.Int s.total_faults);
      ("detected", J.Int s.detected);
      ("undetectable", J.Int s.undetectable);
      ("raw_coverage", J.Float s.raw_coverage);
      ("pruned_coverage", J.Float s.pruned_coverage);
    ]
