(* Shared CLI plumbing: the unified --format/--jobs/--trace/--manifest/
   --connect argument set, the documented exit-code convention, and
   [run_request] — the one adapter through which every analysis
   subcommand executes, locally via a fresh service session or remotely
   via the daemon.  Rendering and engine dispatch live in
   [Olfu_service.Service]; nothing here knows what an op does. *)

open Cmdliner
module J = Olfu_obs.Json
module Trace = Olfu_obs.Trace
module Export = Olfu_obs.Export
module Manifest = Olfu_obs.Manifest
module S = Olfu_service

type fmt = Text | Json | Summary

let format_arg ?(summary = true) () =
  let variants =
    [ ("text", Text); ("json", Json) ]
    @ if summary then [ ("summary", Summary) ] else []
  in
  let doc =
    if summary then
      "Output format: $(b,text), $(b,json) (deterministic machine form), \
       or $(b,summary) (key/value table)."
    else "Output format: $(b,text) or $(b,json)."
  in
  Arg.(value & opt (enum variants) Text & info [ "format" ] ~docv:"FMT" ~doc)

let fmt_of = function
  | Text -> S.Request.Text
  | Json -> S.Request.Json
  | Summary -> S.Request.Summary

(* The one exit-code convention, documented once and attached to every
   analysis subcommand: 0 = clean, 1 = the analysis ran and reported
   findings (lint fails, degraded abstract states, inconsistent safety
   taxonomy), 2 = the request was unusable.  Mirrors
   [Olfu_service.Response.status]. *)
let std_exits =
  Cmd.Exit.info 0 ~doc:"analysis clean: no finding to report."
  :: Cmd.Exit.info 1
       ~doc:
         "findings: the analysis ran and reported violations (lint \
          findings at or above $(b,--fail-on), a degraded abstract \
          state or failed cross-check, an inconsistent safety taxonomy)."
  :: Cmd.Exit.info 2
       ~doc:
         "bad input: unknown configuration or program, unreadable \
          netlist, waiver, baseline or assembly file, unreachable \
          daemon."
  :: Cmd.Exit.defaults

(* --- observability --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and counters and write a Chrome trace_event JSON \
           timeline here (load in chrome://tracing or Perfetto).")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Write a flat JSON run manifest here: configuration, git \
           describe, wall seconds, per-engine and per-step seconds, \
           counter totals.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Send the request to a running $(b,olfu serve) daemon on this \
           Unix socket instead of computing locally.  Output bytes are \
           identical; warm requests return from the daemon's cache.")

let sink_for ~trace ~manifest =
  if trace <> None || manifest <> None then Trace.create () else Trace.null

(* Write whichever observability files were requested. *)
let write_obs ~trace ~manifest ?config ?steps ?prep ?extra ~wall_seconds sink
    =
  (match trace with
  | None -> ()
  | Some path ->
    Export.to_file sink path;
    Format.printf "wrote %s@." path);
  match manifest with
  | None -> ()
  | Some path ->
    Manifest.to_file
      (Manifest.make ?config ?steps ?prep ?extra ~wall_seconds sink)
      path;
    Format.printf "wrote %s@." path

(* Manifest [config] fields for a flow run (non-service subcommands:
   tdf, atpg). *)
let config_fields ?soc rc =
  let base =
    match Olfu.Run_config.to_json rc with J.Obj l -> l | _ -> []
  in
  match soc with None -> base | Some name -> ("soc", J.Str name) :: base

(* --- the service adapter --- *)

let exit_with status =
  match status with
  | S.Response.Success -> `Ok ()
  | s ->
    flush stdout;
    exit (S.Response.exit_code s)

let req_op_name (req : S.Request.t) =
  match req.S.Request.body with
  | S.Request.Run r -> S.Request.op_name r.S.Request.op
  | _ -> "request"

(* Execute one request and print its rendering: through the daemon when
   [connect] names its socket, else locally on a fresh session — the
   same [Service.execute] either way, so the bytes match.  [on_meta]
   lets a subcommand consume side artifacts (DOT graph, baseline lines)
   before the exit status is applied; [force_ok] downgrades a Findings
   exit to success (lint --update-baseline).  *)
let run_request ?(on_meta = fun (_ : S.Service.meta) -> ())
    ?(force_ok = false) ~connect ~trace ~manifest (req : S.Request.t) =
  let finish (resp : S.Response.t) =
    print_string resp.S.Response.output;
    (match resp.S.Response.error with
    | Some m -> Format.eprintf "olfu %s: %s@." (req_op_name req) m
    | None -> ());
    exit_with (if force_ok then S.Response.Success else resp.S.Response.status)
  in
  match connect with
  | Some socket -> (
    if trace <> None || manifest <> None then
      Format.eprintf
        "olfu: --trace/--manifest are local; with --connect use the \
         daemon's --audit log@.";
    match S.Client.request ~wait_seconds:5. ~socket req with
    | Error msg ->
      Format.eprintf "olfu %s: %s@." (req_op_name req) msg;
      exit 2
    | Ok resp -> finish resp)
  | None ->
    let sink = sink_for ~trace ~manifest in
    let session = S.Session.create () in
    let resp, meta = S.Service.execute session ~sink req in
    print_string resp.S.Response.output;
    (match resp.S.Response.error with
    | Some m -> Format.eprintf "olfu %s: %s@." (req_op_name req) m
    | None -> ());
    on_meta meta;
    (match req.S.Request.body with
    | S.Request.Run r ->
      write_obs ~trace ~manifest
        ~config:(S.Service.config_fields r)
        ~steps:meta.S.Service.steps ~prep:meta.S.Service.prep
        ~extra:meta.S.Service.extras
        ~wall_seconds:resp.S.Response.seconds sink
    | _ -> ());
    exit_with (if force_ok then S.Response.Success else resp.S.Response.status)
